#include "core/virtual_view.h"

#include <algorithm>

#include "exec/batch_executor.h"
#include "util/macros.h"

namespace vmsv {

// ---------------------------------------------------------------------------
// BackgroundMapper

BackgroundMapper::BackgroundMapper()
    : worker_([this] { WorkerLoop(); }) {}

BackgroundMapper::~BackgroundMapper() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void BackgroundMapper::Enqueue(VirtualArena* arena, uint64_t slot_start,
                               uint64_t file_page_start, uint64_t count) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(MapTask{arena, slot_start, file_page_start, count});
  }
  work_cv_.notify_one();
}

Status BackgroundMapper::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  Status result = first_error_;
  first_error_ = OkStatus();
  return result;
}

void BackgroundMapper::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    const MapTask task = queue_.front();
    queue_.pop();
    busy_ = true;
    lock.unlock();
    const Status st =
        task.arena->MapRange(task.slot_start, task.file_page_start, task.count);
    lock.lock();
    busy_ = false;
    if (!st.ok() && first_error_.ok()) first_error_ = st;
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// VirtualView

namespace {

/// Walks the maximal live slot runs of a slot table (kHoleSlot breaks a
/// run; `can_extend(slot, len)` may bound it further, e.g. by file
/// contiguity) and calls emit(slot_start, len) per run — the one
/// run-detection loop behind LiveSlotRuns and the compaction move list.
template <typename CanExtend, typename Emit>
void ForEachLiveRun(const std::vector<uint64_t>& pages, CanExtend can_extend,
                    Emit emit) {
  uint64_t slot = 0;
  while (slot < pages.size()) {
    if (pages[slot] == VirtualView::kHoleSlot) {
      ++slot;
      continue;
    }
    uint64_t len = 1;
    while (slot + len < pages.size() &&
           pages[slot + len] != VirtualView::kHoleSlot &&
           can_extend(slot, len)) {
      ++len;
    }
    emit(slot, len);
    slot += len;
  }
}

}  // namespace

StatusOr<std::unique_ptr<VirtualView>> VirtualView::CreateEmpty(
    const PhysicalColumn& column, Value lo, Value hi) {
  if (lo > hi) return InvalidArgument("view range lo > hi");
  return std::unique_ptr<VirtualView>(
      new VirtualView(column.file(), column.num_pages(), lo, hi));
}

void VirtualView::RecordPageAt(uint64_t slot, uint64_t page) {
  if (slot >= pages_.size()) {
    pages_.resize(slot + 1, kHoleSlot);
  }
  // Slot-run transitions: filling between two live neighbors merges their
  // runs, filling next to one extends it, filling in isolation starts one.
  const bool left_live = slot > 0 && pages_[slot - 1] != kHoleSlot;
  const bool right_live =
      slot + 1 < pages_.size() && pages_[slot + 1] != kHoleSlot;
  if (left_live && right_live) {
    --num_slot_runs_;
  } else if (!left_live && !right_live) {
    ++num_slot_runs_;
  }
  // File-run transitions (slot order): same merge/extend/start logic, but
  // adjacency additionally requires consecutive file pages.
  if (!file_runs_dirty_) {
    const bool left_adj = left_live && pages_[slot - 1] + 1 == page;
    const bool right_adj = right_live && page + 1 == pages_[slot + 1];
    if (left_adj && right_adj) {
      --num_file_runs_;
    } else if (!left_adj && !right_adj) {
      ++num_file_runs_;
    }
  }
  // Set-run transitions (sorted page order): membership of page±1 decides.
  const bool set_left = page > 0 && page_to_slot_.count(page - 1) != 0;
  const bool set_right = page_to_slot_.count(page + 1) != 0;
  if (set_left && set_right) {
    --num_set_runs_;
  } else if (!set_left && !set_right) {
    ++num_set_runs_;
  }
  pages_[slot] = page;
  page_to_slot_[page] = slot;
  holes_.erase(slot);
  ++num_live_;
  InvalidateRunCache();
}

Status VirtualView::EnsureMaterialized(BackgroundMapper* mapper) {
  if (is_materialized()) return OkStatus();
  // Lazy materialization happens on first use, and under the concurrent
  // engine several readers can hit an unmaterialized view at once; the
  // per-view mutex makes exactly one of them build the arena. The mapper's
  // producer-session lock additionally keeps a concurrent materialization
  // of a DIFFERENT view from consuming this one's mapping errors at Drain.
  std::lock_guard<std::mutex> lock(materialize_mu_);
  if (is_materialized()) return OkStatus();
  std::unique_lock<std::mutex> session;
  if (mapper != nullptr) {
    session = std::unique_lock<std::mutex>(mapper->producer_mutex());
  }
  auto arena_r = VirtualArena::Create(file_, arena_slots_,
                                      pages_.empty() ? 0 : pages_[0]);
  if (!arena_r.ok()) return arena_r.status();
  // Materialization is transactional: the arena is installed only once every
  // mapping succeeded. A mid-way mmap failure (e.g. vm.max_map_count
  // exhausted) must leave the view consistently UNmaterialized — a
  // half-mapped arena would make the next Scan fault instead of the caller
  // seeing this Status.
  std::unique_ptr<VirtualArena> arena = std::move(arena_r).ValueOrDie();
  // Rewire the page list in coalesced runs of consecutive page ids. The
  // list is dense here: holes only ever exist while materialized.
  uint64_t slot = 0;
  while (slot < pages_.size()) {
    uint64_t run = 1;
    while (slot + run < pages_.size() &&
           pages_[slot + run] == pages_[slot] + run) {
      ++run;
    }
    if (mapper != nullptr) {
      mapper->Enqueue(arena.get(), slot, pages_[slot], run);
    } else {
      VMSV_RETURN_IF_ERROR(arena->MapRange(slot, pages_[slot], run));
    }
    slot += run;
  }
  if (mapper != nullptr) {
    VMSV_RETURN_IF_ERROR(mapper->Drain());
  }
  PublishArena(std::move(arena));
  return OkStatus();
}

Status VirtualView::AppendPage(uint64_t page, BackgroundMapper* mapper) {
  if (page_to_slot_.count(page) != 0) {
    return FailedPrecondition("page already in view");
  }
  // A single page re-densifies: fill the lowest hole if one exists (the
  // mmap cost is the same either way, and the arena stays short).
  if (arena_ != nullptr && !holes_.empty()) {
    const uint64_t slot = *holes_.begin();
    if (mapper != nullptr) {
      mapper->Enqueue(arena_.get(), slot, page, 1);
    } else {
      VMSV_RETURN_IF_ERROR(arena_->MapRange(slot, page, 1));
    }
    RecordPageAt(slot, page);
    return OkStatus();
  }
  return AppendPageRun(page, 1, mapper);
}

Status VirtualView::AppendPageRun(uint64_t first_page, uint64_t count,
                                  BackgroundMapper* mapper) {
  for (uint64_t i = 0; i < count; ++i) {
    if (page_to_slot_.count(first_page + i) != 0) {
      return FailedPrecondition("page already in view");
    }
  }
  const uint64_t slot_start = pages_.size();
  if (slot_start + count > arena_slots_) {
    // The tail reservation is exhausted (hole slots still count against it).
    // Fall back to filling holes page-wise when they can absorb the run.
    // Like the tail path below, ALL maps run before ANY membership is
    // recorded: a mid-way mmap failure must not leave a half-applied run.
    // (A failure can leave some hole slots physically mapped but still
    // logically holes — benign: scans skip them by the slot-table sentinel,
    // and a later fill or compaction reclaims the mapping.)
    if (arena_ != nullptr && holes_.size() >= count) {
      std::vector<uint64_t> targets;
      targets.reserve(count);
      for (auto it = holes_.begin(); targets.size() < count; ++it) {
        targets.push_back(*it);
      }
      for (uint64_t i = 0; i < count; ++i) {
        if (mapper != nullptr) {
          mapper->Enqueue(arena_.get(), targets[i], first_page + i, 1);
        } else {
          VMSV_RETURN_IF_ERROR(arena_->MapRange(targets[i], first_page + i, 1));
        }
      }
      for (uint64_t i = 0; i < count; ++i) {
        RecordPageAt(targets[i], first_page + i);
      }
      return OkStatus();
    }
    return ResourceExhausted("view arena full");
  }
  // Map before recording membership: on mmap failure the view must not be
  // left listing pages whose slots are unmapped (a later Scan would fault).
  // Background-mapped errors surface at Drain, where creation fails as a
  // whole and the view is dropped.
  if (arena_ != nullptr) {
    if (mapper != nullptr) {
      mapper->Enqueue(arena_.get(), slot_start, first_page, count);
    } else {
      VMSV_RETURN_IF_ERROR(arena_->MapRange(slot_start, first_page, count));
    }
  }
  for (uint64_t i = 0; i < count; ++i) {
    RecordPageAt(slot_start + i, first_page + i);
  }
  return OkStatus();
}

Status VirtualView::RestorePages(const std::vector<uint64_t>& pages,
                                 uint64_t column_pages) {
  if (!pages_.empty() || arena_ != nullptr) {
    return FailedPrecondition("RestorePages needs an empty unmaterialized view");
  }
  pages_.reserve(pages.size());
  for (const uint64_t page : pages) {
    if (page >= column_pages) {
      return InvalidArgument("restored page " + std::to_string(page) +
                             " beyond column (" + std::to_string(column_pages) +
                             " pages)");
    }
    if (page_to_slot_.count(page) != 0) {
      return InvalidArgument("duplicate restored page " + std::to_string(page));
    }
    RecordPageAt(pages_.size(), page);
  }
  return OkStatus();
}

std::unique_ptr<VirtualArena> VirtualView::ReleaseArena() {
  if (arena_ == nullptr) return nullptr;
  arena_ptr_.store(nullptr, std::memory_order_release);
  std::unique_ptr<VirtualArena> retired = std::move(arena_);
  if (!holes_.empty()) {
    // Densify in slot order (not swap-remove): demotion must be
    // deterministic so the spilled page order — and with it every restored
    // scan — matches across runs and restarts.
    std::vector<uint64_t> dense;
    dense.reserve(num_live_);
    for (const uint64_t page : pages_) {
      if (page != kHoleSlot) dense.push_back(page);
    }
    pages_ = std::move(dense);
    page_to_slot_.clear();
    for (uint64_t slot = 0; slot < pages_.size(); ++slot) {
      page_to_slot_[pages_[slot]] = slot;
    }
    holes_.clear();
    file_runs_dirty_ = true;  // densification can merge hole-split runs
  }
  num_slot_runs_ = pages_.empty() ? 0 : 1;
  InvalidateRunCache();
  return retired;
}

Status VirtualView::RemovePage(uint64_t page) {
  auto it = page_to_slot_.find(page);
  if (it == page_to_slot_.end()) return NotFound("page not in view");
  const uint64_t slot = it->second;

  // Set-run transitions mirror RecordPageAt's, inverted: removing a page
  // that bridged both neighbors splits a run, removing an isolated page
  // ends one. Order-independent, so shared by both branches below.
  const bool set_left = page > 0 && page_to_slot_.count(page - 1) != 0;
  const bool set_right = page_to_slot_.count(page + 1) != 0;
  if (set_left && set_right) {
    ++num_set_runs_;
  } else if (!set_left && !set_right) {
    --num_set_runs_;
  }

  if (arena_ == nullptr) {
    // Unmaterialized: plain list edit. Swap-remove keeps the list dense (the
    // hole representation below exists to save mmap calls; there are none to
    // save here). It reorders the list, so the slot-order file-run cache
    // goes dirty rather than being patched.
    file_runs_dirty_ = true;
    const uint64_t last_slot = pages_.size() - 1;
    if (slot != last_slot) {
      const uint64_t moved_page = pages_[last_slot];
      pages_[slot] = moved_page;
      page_to_slot_[moved_page] = slot;
    }
    pages_.pop_back();
    page_to_slot_.erase(it);
    --num_live_;
    num_slot_runs_ = num_live_ > 0 ? 1 : 0;
    InvalidateRunCache();
    return OkStatus();
  }

  // Materialized: punch a PROT_NONE hole — one mmap call (the historical
  // swap-remove paid two: rewire the tail page in, unmap the tail slot) and
  // slot order survives, which keeps runs coalescible. The price is
  // fragmentation, paid down by Compact(). If the slot sits inside a
  // promoted 2 MiB unit, the unit is demoted to 4 KiB first — the hole
  // punch itself would split the PMD anyway, but demoting keeps the arena's
  // granularity bookkeeping ahead of the kernel, not behind it.
  VMSV_RETURN_IF_ERROR(arena_->DemoteRange(slot, 1));
  VMSV_RETURN_IF_ERROR(arena_->UnmapRange(slot, 1));
  const bool left_live = slot > 0 && pages_[slot - 1] != kHoleSlot;
  const bool right_live =
      slot + 1 < pages_.size() && pages_[slot + 1] != kHoleSlot;
  if (left_live && right_live) {
    ++num_slot_runs_;  // split one run into two
  } else if (!left_live && !right_live) {
    --num_slot_runs_;  // removed a singleton run
  }
  if (!file_runs_dirty_) {
    const bool left_adj = left_live && pages_[slot - 1] + 1 == page;
    const bool right_adj = right_live && page + 1 == pages_[slot + 1];
    if (left_adj && right_adj) {
      ++num_file_runs_;
    } else if (!left_adj && !right_adj) {
      --num_file_runs_;
    }
  }
  pages_[slot] = kHoleSlot;
  holes_.insert(slot);
  page_to_slot_.erase(it);
  --num_live_;
  // Trailing holes shrink the slot range for free (their slots are already
  // back in the reserved state).
  while (!pages_.empty() && pages_.back() == kHoleSlot) {
    holes_.erase(pages_.size() - 1);
    pages_.pop_back();
  }
  InvalidateRunCache();
  return OkStatus();
}

std::vector<uint64_t> VirtualView::physical_pages() const {
  std::vector<uint64_t> live;
  live.reserve(num_live_);
  ForEachPage([&live](uint64_t page) { live.push_back(page); });
  return live;
}

uint64_t VirtualView::CountFileRuns() const {
  if (!file_runs_dirty_) return num_file_runs_;
  uint64_t runs = 0;
  bool in_run = false;
  uint64_t prev_page = 0;
  for (const uint64_t page : pages_) {
    if (page == kHoleSlot) {
      in_run = false;
      continue;
    }
    if (!in_run || page != prev_page + 1) ++runs;
    in_run = true;
    prev_page = page;
  }
  num_file_runs_ = runs;
  file_runs_dirty_ = false;
  return runs;
}

std::vector<PageRun> VirtualView::LiveSlotRuns() const {
  std::vector<PageRun> runs;
  ForEachLiveRun(
      pages_, [](uint64_t, uint64_t) { return true; },
      [&runs](uint64_t slot, uint64_t len) {
        runs.push_back(PageRun{slot, len});
      });
  return runs;
}

Status VirtualView::Compact(const ViewCompactionOptions& options,
                            ViewCompactionStats* stats,
                            std::unique_ptr<VirtualArena>* retired_arena) {
  ViewCompactionStats local;
  ViewCompactionStats& out = stats != nullptr ? *stats : local;
  out = ViewCompactionStats{};
  out.live_pages = num_live_;
  out.holes_reclaimed = holes_.size();
  out.slot_runs_before = num_slot_runs_;
  out.file_runs_before = CountFileRuns();
  out.slot_runs_after = out.slot_runs_before;
  out.file_runs_after = out.file_runs_before;
  // Unmaterialized views are dense by invariant; empty ones have nothing to
  // move. Either way there is no arena work.
  if (arena_ == nullptr || num_live_ == 0) return OkStatus();

  // Move units: maximal runs contiguous in BOTH slots and file pages — the
  // granularity of one kernel VMA, which is what a single mremap can move.
  struct MoveUnit {
    uint64_t slot;
    uint64_t page;
    uint64_t len;
  };
  std::vector<MoveUnit> units;
  ForEachLiveRun(
      pages_,
      [this](uint64_t slot, uint64_t len) {
        return pages_[slot + len] == pages_[slot] + len;
      },
      [&](uint64_t slot, uint64_t len) {
        units.push_back(MoveUnit{slot, pages_[slot], len});
      });
  const bool sorted_already = std::is_sorted(
      units.begin(), units.end(),
      [](const MoveUnit& a, const MoveUnit& b) { return a.page < b.page; });
  if (holes_.empty() && (!options.sort_runs_by_page || sorted_already)) {
    return OkStatus();  // already as dense as this view can get
  }
  if (options.sort_runs_by_page && !sorted_already) {
    std::sort(units.begin(), units.end(),
              [](const MoveUnit& a, const MoveUnit& b) { return a.page < b.page; });
  }

  // The congruence hint: slot 0 of the dense arena will hold the first file
  // page of the (possibly sorted) layout. Placing the arena base congruent
  // to that page mod 2 MiB is what makes the post-compaction collapse
  // attempt possible at all — with sort_runs_by_page the densified view is
  // file-contiguous, exactly the layout a PMD can map.
  auto arena_r =
      VirtualArena::Create(file_, arena_slots_,
                           units.empty() ? 0 : units.front().page);
  if (!arena_r.ok()) return arena_r.status();
  std::unique_ptr<VirtualArena> dense = std::move(arena_r).ValueOrDie();
  const bool allow_mremap =
      options.use_mremap && VirtualArena::MremapSupported();
  uint64_t dst = 0;
  for (const MoveUnit& unit : units) {
    bool used_mremap = false;
    VMSV_RETURN_IF_ERROR(dense->AdoptRange(arena_.get(), unit.slot, dst,
                                           unit.len, allow_mremap,
                                           &used_mremap));
    if (used_mremap) {
      ++out.mremap_moves;
    } else {
      ++out.remap_moves;
    }
    dst += unit.len;
  }
  if (retired_arena != nullptr) {
    *retired_arena = std::move(arena_);
  }
  PublishArena(std::move(dense));
  if (options.promote_huge && arena_->HugeCapable()) {
    // Compaction IS the promotion trigger: the view is now dense and (with
    // sort_runs_by_page) file-contiguous, so try to collapse every whole
    // congruent 2 MiB unit. Refusals leave those units at 4 KiB and are
    // only counted — scans are bit-identical either way.
    VMSV_RETURN_IF_ERROR(arena_->PromoteRange(0, num_live_));
    out.huge_units_promoted = arena_->huge_unit_count();
    out.huge_promote_failures = arena_->huge_promote_failures();
  }

  pages_.clear();
  pages_.reserve(num_live_);
  page_to_slot_.clear();
  for (const MoveUnit& unit : units) {
    for (uint64_t i = 0; i < unit.len; ++i) {
      page_to_slot_[unit.page + i] = pages_.size();
      pages_.push_back(unit.page + i);
    }
  }
  holes_.clear();
  num_slot_runs_ = pages_.empty() ? 0 : 1;
  InvalidateRunCache();
  file_runs_dirty_ = true;  // slot order changed wholesale; rebuild below
  out.slot_runs_after = num_slot_runs_;
  out.file_runs_after = CountFileRuns();
  return OkStatus();
}

std::shared_ptr<const std::vector<PageRun>> VirtualView::SlotRunsCached()
    const {
  auto cached = std::atomic_load(&runs_cache_);
  if (cached != nullptr) return cached;
  auto built =
      std::make_shared<const std::vector<PageRun>>(LiveSlotRuns());
  // Racing readers rebuild identical lists (membership is frozen while any
  // reader scans); last store wins and both copies are valid.
  std::atomic_store(&runs_cache_,
                    std::shared_ptr<const std::vector<PageRun>>(built));
  return built;
}

PageScanResult VirtualView::Scan(const RangeQuery& q,
                                 const ParallelScanOptions& scan_options) const {
  const ParallelScanner scanner(scan_options);
  const Value* base = reinterpret_cast<const Value*>(arena().data());
  if (holes_.empty()) {
    // Dense fast path — the whole point of rewiring (and of compaction): one
    // contiguous sweep, no indirection per page, sharded above the cutoff.
    return scanner.ScanPages(base, pages_.size(), q);
  }
  // Fragmented path: sweep each live run, skipping the PROT_NONE holes.
  const auto runs = SlotRunsCached();
  return scanner.ScanPageRuns(base, *runs, q);
}

std::vector<PageScanResult> VirtualView::ScanMany(
    const std::vector<RangeQuery>& queries,
    const ParallelScanOptions& scan_options) const {
  const BatchExecutor executor(scan_options);
  const Value* base = reinterpret_cast<const Value*>(arena().data());
  if (holes_.empty()) {
    return executor.SharedScanPages(base, pages_.size(), queries);
  }
  const auto runs = SlotRunsCached();
  return executor.SharedScanPageRuns(base, *runs, queries);
}

PageScanResult VirtualView::ScanSelectedSlots(
    const std::vector<uint64_t>& slots, const RangeQuery& q) const {
  // Coalesce consecutive selected slots so one kernel call covers each
  // virtually-contiguous block — on a compacted view a cover scan
  // degenerates to a handful of long sweeps.
  std::vector<PageRun> runs;
  size_t i = 0;
  while (i < slots.size()) {
    uint64_t len = 1;
    while (i + len < slots.size() && slots[i + len] == slots[i] + len) ++len;
    runs.push_back(PageRun{slots[i], len});
    i += len;
  }
  const ParallelScanner scanner;
  return scanner.ScanPageRuns(reinterpret_cast<const Value*>(arena().data()),
                              runs, q);
}

std::vector<PageScanResult> VirtualView::ScanManySelectedSlots(
    const std::vector<uint64_t>& slots,
    const std::vector<RangeQuery>& queries) const {
  // Same run coalescing as ScanSelectedSlots, then one shared pass answers
  // every query from each page read.
  std::vector<PageRun> runs;
  size_t i = 0;
  while (i < slots.size()) {
    uint64_t len = 1;
    while (i + len < slots.size() && slots[i + len] == slots[i] + len) ++len;
    runs.push_back(PageRun{slots[i], len});
    i += len;
  }
  const BatchExecutor executor;
  return executor.SharedScanPageRuns(
      reinterpret_cast<const Value*>(arena().data()), runs, queries);
}

// ---------------------------------------------------------------------------
// Creation by scan

namespace {

struct BuildState {
  VirtualView* view = nullptr;
  BackgroundMapper* mapper = nullptr;
  bool coalesce = false;
  uint64_t run_start = 0;
  uint64_t run_len = 0;
  Status status;

  void FlushRun() {
    if (run_len == 0 || !status.ok()) return;
    const Status st = view->AppendPageRun(run_start, run_len, mapper);
    if (!st.ok()) status = st;
    run_len = 0;
  }

  void AddPage(uint64_t page) {
    if (!status.ok()) return;
    if (!coalesce) {
      const Status st = view->AppendPage(page, mapper);
      if (!st.ok()) status = st;
      return;
    }
    if (run_len > 0 && page == run_start + run_len) {
      ++run_len;
      return;
    }
    FlushRun();
    run_start = page;
    run_len = 1;
  }
};

}  // namespace

StatusOr<ViewBuildOutput> BuildViewAndAnswer(const PhysicalColumn& column,
                                             Value lo, Value hi,
                                             const RangeQuery& query,
                                             const ViewCreationOptions& options,
                                             BackgroundMapper* mapper) {
  if (options.background_mapping && mapper == nullptr) {
    return InvalidArgument("background_mapping requires a BackgroundMapper");
  }
  auto view_r = VirtualView::CreateEmpty(column, lo, hi);
  if (!view_r.ok()) return view_r.status();
  ViewBuildOutput out;
  out.view = std::move(view_r).ValueOrDie();

  BackgroundMapper* effective_mapper =
      options.background_mapping ? mapper : nullptr;
  // Producer session (see BackgroundMapper): this whole scan is one
  // Enqueue...Drain window; a concurrent lazy materialization on another
  // thread must not interleave its Drain with ours.
  std::unique_lock<std::mutex> session;
  if (effective_mapper != nullptr) {
    session = std::unique_lock<std::mutex>(effective_mapper->producer_mutex());
  }
  if (!options.lazy_materialize) {
    // Eager creation: the arena exists up front and pages are rewired as the
    // scan discovers them (§2.3). Lazy creation records the list only.
    VMSV_RETURN_IF_ERROR(out.view->EnsureMaterialized());
  }
  BuildState state;
  state.view = out.view.get();
  state.mapper = effective_mapper;
  state.coalesce = options.coalesce_runs;
  const RangeQuery view_range{lo, hi};
  const bool ranges_equal = view_range == query;
  const uint64_t num_pages = column.num_pages();
  // The data pass (filter + membership probe) shards across the scan pool;
  // page membership and mmap work replay serially in page order afterwards,
  // so view page order — and with it run coalescing and every result — is
  // identical to the serial pass for any thread count.
  const ParallelScanner scanner;
  const unsigned shards = scanner.NumShards(num_pages);
  if (shards <= 1) {
    // Serial path: membership (and on the eager path, mapping) interleaves
    // with the scan, so mmap work overlaps scanning as §2.3 describes.
    for (uint64_t page = 0; page < num_pages; ++page) {
      const Value* data = column.PageData(page);
      // One vectorized filter pass answers the query; on the adaptive path
      // the candidate range IS the query range, so the same pass also
      // decides page membership and creation rides on the answering scan for
      // free. A wider view range needs a qualification probe only when the
      // query found nothing on the page.
      const PageScanResult r = ScanPage(data, kValuesPerPage, query);
      out.query_result.Merge(r);
      const bool qualifies =
          r.match_count > 0 ||
          (!ranges_equal && PageContainsAny(data, kValuesPerPage, view_range));
      if (qualifies) state.AddPage(page);
    }
  } else {
    struct ShardScan {
      PageScanResult result;
      std::vector<uint64_t> qualifying;
    };
    std::vector<ShardScan> per_shard(shards);
    scanner.ForShards(num_pages, [&](unsigned shard, uint64_t begin,
                                     uint64_t end) {
      ShardScan& s = per_shard[shard];
      for (uint64_t page = begin; page < end; ++page) {
        const Value* data = column.PageData(page);
        const PageScanResult r = ScanPage(data, kValuesPerPage, query);
        s.result.Merge(r);
        const bool qualifies =
            r.match_count > 0 ||
            (!ranges_equal &&
             PageContainsAny(data, kValuesPerPage, view_range));
        if (qualifies) s.qualifying.push_back(page);
      }
    });
    for (const ShardScan& s : per_shard) {
      out.query_result.Merge(s.result);
      for (const uint64_t page : s.qualifying) state.AddPage(page);
    }
  }
  state.FlushRun();
  if (effective_mapper != nullptr) {
    // Drain BEFORE any error return: queued tasks hold a raw pointer into
    // out.view's arena, which dies with this frame on the error path.
    VMSV_RETURN_IF_ERROR(effective_mapper->Drain());
  }
  if (!state.status.ok()) return state.status;
  out.scanned_pages = num_pages;
  return out;
}

StatusOr<std::unique_ptr<VirtualView>> BuildViewByScan(
    const PhysicalColumn& column, Value lo, Value hi,
    const ViewCreationOptions& options, BackgroundMapper* mapper) {
  auto out = BuildViewAndAnswer(column, lo, hi, RangeQuery{lo, hi}, options,
                                mapper);
  if (!out.ok()) return out.status();
  return std::move(out->view);
}

}  // namespace vmsv
