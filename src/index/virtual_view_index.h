// Virtual view (the paper's representation): qualifying pages are rewired
// into a contiguous virtual range instead of being copied. Scans are as
// dense as the physical copy, but updates only maintain page MEMBERSHIP —
// content changes are shared with the base column through the common
// physical pages.
//
// Update churn punches holes into the view (core/virtual_view.h); this
// index runs the lifecycle manager's compaction trigger after every
// removal, so probe loops keep scanning a dense range even under sustained
// updates.

#ifndef VMSV_INDEX_VIRTUAL_VIEW_INDEX_H_
#define VMSV_INDEX_VIRTUAL_VIEW_INDEX_H_

#include <memory>

#include "core/view_lifecycle.h"
#include "core/virtual_view.h"
#include "index/partial_index.h"

namespace vmsv {

class VirtualViewIndex : public PartialIndex {
 public:
  const char* name() const override { return "virtual_view"; }

  Status Build(const PhysicalColumn& column, Value lo, Value hi) override;
  Status ApplyUpdate(const PhysicalColumn& column,
                     const RowUpdate& update) override;
  IndexQueryResult Query(const PhysicalColumn& column,
                         const RangeQuery& q) const override;
  uint64_t num_indexed_pages() const override {
    return view_ == nullptr ? 0 : view_->num_pages();
  }

  const VirtualView& view() const { return *view_; }

  /// Compaction/eviction counters for this index's view.
  const LifecycleStats& lifecycle_stats() const { return lifecycle_.stats(); }

 private:
  std::unique_ptr<VirtualView> view_;
  ViewLifecycleManager lifecycle_{LifecycleConfig{}};
};

}  // namespace vmsv

#endif  // VMSV_INDEX_VIRTUAL_VIEW_INDEX_H_
