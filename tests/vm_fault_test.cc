// VM-fault matrix (ISSUE 7 tentpole): enumerate (operation-index, errno)
// points of a scripted in-memory workload under FaultInjectingVmIo — the
// seam every mmap/munmap/mremap/mprotect/madvise/memfd_create/ftruncate of
// the rewiring layer routes through — and check the degradation invariants:
//
//   1. exactness — every Execute/ExecuteBatch answer is bit-identical to
//      ExecuteFullScan on the same column (the base arena predates the
//      armed plan and scans make no syscalls, so the oracle is fault-free
//      by construction);
//   2. no aborts — resource exhaustion surfaces as degraded service
//      (base-column fallbacks, dropped candidates, abandoned compactions),
//      never as a crash or an error from a read;
//   3. recovery — once the plan is cleared, queries keep answering
//      exactly, and the next maintenance pass re-probes the mapping layer
//      and clears Health().mapping_pressure (no residual degraded flags).
//
// The matrix crosses errno kinds (ENOMEM / EAGAIN / ENOSPC, once and
// sticky) with operation-class targets (any / mmap / mprotect / munmap /
// mremap), sized by a fault-free accounting run. The smoke run (plain
// ctest) strides the any-target indices and probes one midpoint per
// specific class; VMSV_VM_FAULT_FULL=1 sweeps every index of every class
// (tools/vm_fault_matrix.py drives that mode in CI).
//
// Alongside the matrix: the PartialViewIndex foreign-view error contract
// (the historical VMSV_CHECK aborts), creation-time memfd/ftruncate
// faults, the vm.max_map_count-style mapping budget with pressure-driven
// eviction, mremap-failure fallback mid-compaction, the durable-ENOSPC
// read-only round trip, and the workload runner's health surface.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "vmsv.h"
#include "core/virtual_view.h"
#include "rewiring/hugepage.h"
#include "rewiring/physical_memory_file.h"
#include "rewiring/virtual_arena.h"
#include "rewiring/vm_io.h"
#include "scoped_temp_dir.h"
#include "storage/column.h"
#include "storage/storage_io.h"
#include "util/env.h"
#include "util/macros.h"
#include "workload/distribution.h"
#include "workload/query_generator.h"
#include "workload/runner.h"

namespace vmsv {
namespace {

constexpr Value kMaxValue = 100'000'000;
constexpr uint64_t kMinFullPointsPerScenario = 200;

uint64_t TestPages() { return GetEnvUint64("VMSV_VM_FAULT_PAGES", 16); }
uint64_t NumRows() { return TestPages() * kValuesPerPage; }
bool FullSweep() { return GetEnvUint64("VMSV_VM_FAULT_FULL", 0) != 0; }

/// Update #j (1-based) hits a page-spread row with an above-domain value,
/// same convention as the crash matrix.
uint64_t UpdateRow(uint64_t j) { return (j * 37) % NumRows(); }
Value UpdateValue(uint64_t j) { return kMaxValue + j; }

struct Scenario {
  QueryMode mode;
  size_t max_views;
  bool cost_based;
  /// Durable column with demote steps in the script: the routed pass then
  /// PROMOTES demoted views, so their re-materialization mmaps are inside
  /// the fault surface — a failed promote must fall back to the base scan
  /// bit-identically and leave the view demoted, never half-mapped.
  bool tiering = false;
};

AdaptiveConfig MakeConfig(const Scenario& s, VmIo* io) {
  AdaptiveConfig config;
  config.mode = s.mode;
  config.max_views = s.max_views;
  config.cost_based_routing = s.cost_based;
  config.vm_io = io;
  // Relief backoff is real-time; keep the sweep fast.
  config.pressure_relief_backoff_us = 1;
  // An eager eviction margin keeps the pool churning on the script's
  // fresh-per-round queries: every round materializes new views AND
  // retires old arenas, so the op surface covers munmap as densely as
  // mmap.
  config.lifecycle.eviction_margin = 0.05;
  return config;
}

/// A fresh in-memory column whose ENTIRE address-space traffic — backing
/// file creation, base arena, every view arena — routes through `io`. The
/// caller arms the fault plan AFTER this returns, so genesis ops are
/// counted but never faulted (mirroring the crash matrix, whose genesis
/// runs on real I/O).
/// Owns the facade table while exposing the engine for white-box use.
struct OwnedColumn {
  std::unique_ptr<Table> table;
  AdaptiveColumn* operator->() const { return table->shard(0); }
  AdaptiveColumn* get() const { return table->shard(0); }
};

StatusOr<OwnedColumn> MakeFaultableColumn(
    const Scenario& s, FaultInjectingVmIo* io, const std::string& dir = "") {
  if (s.tiering) {
    // Durable variant (demotion needs a persist dir); storage I/O is real,
    // only the mapping layer is faultable. The dir is recycled per point.
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    auto table_r =
        Db::CreateDurable(dir, NumRows(), DbOptions{MakeConfig(s, io)});
    if (!table_r.ok()) return table_r.status();
    OwnedColumn owned{std::move(table_r).ValueOrDie()};
    DistributionSpec spec;
    spec.kind = DataDistribution::kSine;
    spec.max_value = kMaxValue;
    spec.seed = 42;
    FillColumn(spec, owned->mutable_column());
    return owned;
  }
  auto file =
      PhysicalMemoryFile::Create(TestPages(), MemoryFileBackend::kMemfd, io);
  if (!file.ok()) return file.status();
  auto shared = std::make_shared<PhysicalMemoryFile>(std::move(*file));
  auto column = PhysicalColumn::Attach(std::move(shared), NumRows());
  if (!column.ok()) return column.status();
  DistributionSpec spec;
  spec.kind = DataDistribution::kSine;
  spec.max_value = kMaxValue;
  spec.seed = 42;
  FillColumn(spec, column->get());
  auto table_r = Db::Create(std::move(column).ValueOrDie(),
                            DbOptions{MakeConfig(s, io)});
  if (!table_r.ok()) return table_r.status();
  return OwnedColumn{std::move(table_r).ValueOrDie()};
}

/// Round r of the script queries: same shape, fresh positions — so later
/// rounds build NEW candidates, churning the pool at its budget (eviction
/// + arena retirement = the munmap traffic of the op surface).
std::vector<RangeQuery> ScriptQueries(uint64_t round) {
  QueryWorkloadSpec spec;
  spec.num_queries = 8;
  spec.domain_hi = kMaxValue;
  spec.seed = 97 + 13 * round;
  return MakeFixedSelectivityWorkload(spec, 0.10);
}

/// One query under fire: the full-scan oracle must succeed (it makes no
/// mapping syscalls), Execute must succeed (degrading to the base column
/// at worst), and the two must agree bit-identically.
bool CheckAgainstOracle(AdaptiveColumn* column, const RangeQuery& q,
                        const std::string& step, std::string* detail) {
  auto oracle = column->ExecuteFullScan(q);
  if (!oracle.ok()) {
    *detail = step + ": oracle full scan failed: " + oracle.status().ToString();
    return false;
  }
  auto exec = column->Execute(q);
  if (!exec.ok()) {
    *detail = step + ": Execute failed: " + exec.status().ToString();
    return false;
  }
  if (exec->match_count != oracle->match_count || exec->sum != oracle->sum) {
    *detail = step + ": adaptive/oracle mismatch: adaptive count=" +
              std::to_string(exec->match_count) +
              " sum=" + std::to_string(exec->sum) +
              " vs oracle count=" + std::to_string(oracle->match_count) +
              " sum=" + std::to_string(oracle->sum);
    return false;
  }
  return true;
}

/// The scripted workload, `rounds` times over: each query runs twice
/// back-to-back — the first builds the candidate (lazily: page lists, no
/// mmap), the immediate repeat routes into it and MATERIALIZES it before
/// the next candidate can evict it (crucial at tight view budgets) — then
/// an update wave, a full routed pass, and a flush. Later rounds use
/// fresh query positions, so pool churn at the budget retires
/// materialized arenas (munmap traffic). The shared-scan batch path
/// closes the script. EVERY read must answer exactly; in-memory updates
/// and flushes must never error (VM faults degrade — they do not surface
/// on these paths).
bool RunScript(AdaptiveColumn* column, uint64_t rounds,
               std::string* detail, bool demote = false) {
  std::vector<RangeQuery> queries;
  for (uint64_t r = 0; r < rounds; ++r) {
    queries = ScriptQueries(r);
    const std::string round = "round " + std::to_string(r) + " ";
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!CheckAgainstOracle(column, queries[i],
                              round + "adapt query " + std::to_string(i),
                              detail)) {
        return false;
      }
      if (!CheckAgainstOracle(column, queries[i],
                              round + "materialize query " + std::to_string(i),
                              detail)) {
        return false;
      }
    }
    // Tiering scenarios: push the freshly materialized views cold, so the
    // routed pass below has to PROMOTE them — re-materialization mmaps
    // under fire, with the base-scan fallback as the exactness backstop.
    if (demote) (void)column->DemoteColdestViews(2);
    for (uint64_t j = 1; j <= 12; ++j) {
      const uint64_t u = r * 12 + j;
      const Status updated = column->Update(UpdateRow(u), UpdateValue(u));
      if (!updated.ok()) {
        *detail = round + "update " + std::to_string(j) +
                  " failed: " + updated.ToString();
        return false;
      }
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!CheckAgainstOracle(column, queries[i],
                              round + "routed query " + std::to_string(i),
                              detail)) {
        return false;
      }
    }
    auto flushed = column->FlushUpdates();
    if (!flushed.ok()) {
      *detail = round + "FlushUpdates failed: " + flushed.status().ToString();
      return false;
    }
  }
  auto batch = column->ExecuteBatch(queries);
  if (!batch.ok()) {
    *detail = "ExecuteBatch failed: " + batch.status().ToString();
    return false;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    auto oracle = column->ExecuteFullScan(queries[i]);
    if (!oracle.ok()) {
      *detail = "batch oracle " + std::to_string(i) +
                " failed: " + oracle.status().ToString();
      return false;
    }
    const QueryExecution& got = batch->queries[i];
    if (got.match_count != oracle->match_count || got.sum != oracle->sum) {
      *detail = "batch query " + std::to_string(i) +
                " mismatch: batch count=" + std::to_string(got.match_count) +
                " sum=" + std::to_string(got.sum) +
                " vs oracle count=" + std::to_string(oracle->match_count) +
                " sum=" + std::to_string(oracle->sum);
      return false;
    }
  }
  return true;
}

/// The faults clear: queries stay exact, and the next maintenance pass
/// (forced by an update) re-probes the mapping layer and drops the
/// pressure flag. No degraded flag may linger.
bool CheckRecovery(AdaptiveColumn* column, FaultInjectingVmIo* io,
                   std::string* detail) {
  io->Arm(VmFaultPlan{});  // resource pressure over; accountant lives on
  const Status updated = column->Update(UpdateRow(25), UpdateValue(25));
  if (!updated.ok()) {
    *detail = "recovery update failed: " + updated.ToString();
    return false;
  }
  const std::vector<RangeQuery> queries = ScriptQueries(0);
  for (size_t i = 0; i < 3; ++i) {
    if (!CheckAgainstOracle(column, queries[i],
                            "recovery query " + std::to_string(i), detail)) {
      return false;
    }
  }
  const ColumnHealth health = column->Health();
  if (health.mapping_pressure) {
    *detail = "mapping_pressure still set after faults cleared";
    return false;
  }
  if (health.degraded_read_only) {
    *detail = "degraded_read_only set on an in-memory column";
    return false;
  }
  return true;
}

struct FaultKindSpec {
  const char* name;
  int fail_errno;
  bool sticky;
};

constexpr FaultKindSpec kKinds[] = {
    {"enomem_once", ENOMEM, false},
    {"eagain_once", EAGAIN, false},
    {"enospc_once", ENOSPC, false},
    {"enomem_sticky", ENOMEM, true},
};

struct TargetSpec {
  const char* name;
  VmOp op;
};

constexpr TargetSpec kTargets[] = {
    {"any", VmOp::kAny},           {"mmap", VmOp::kMmap},
    {"mprotect", VmOp::kMprotect}, {"munmap", VmOp::kMunmap},
    {"mremap", VmOp::kMremap},     {"madvise", VmOp::kMadvise},
};

uint64_t ClassOps(VmOp op, const FaultInjectingVmIo::Stats& s) {
  switch (op) {
    case VmOp::kAny: return s.ops();
    case VmOp::kMmap: return s.mmaps;
    case VmOp::kMunmap: return s.munmaps;
    case VmOp::kMremap: return s.mremaps;
    case VmOp::kMprotect: return s.mprotects;
    case VmOp::kMadvise: return s.madvises;
    case VmOp::kMemfdCreate: return s.memfd_creates;
    case VmOp::kFtruncate: return s.ftruncates;
  }
  return 0;
}

uint64_t PointSeed(uint64_t target_idx, int fail_errno, uint64_t op) {
  return (op * 1315423911ull) ^ (static_cast<uint64_t>(fail_errno) << 17) ^
         (target_idx * 2654435761ull);
}

/// Script-only op counts: Arm resets the fault-plan counter but stats
/// accumulate from construction, so the genesis contribution is subtracted
/// (armed runs count op indices from Arm, i.e. genesis ops never fire).
FaultInjectingVmIo::Stats SubtractStats(const FaultInjectingVmIo::Stats& a,
                                        const FaultInjectingVmIo::Stats& b) {
  FaultInjectingVmIo::Stats d;
  d.mmaps = a.mmaps - b.mmaps;
  d.munmaps = a.munmaps - b.munmaps;
  d.mremaps = a.mremaps - b.mremaps;
  d.mprotects = a.mprotects - b.mprotects;
  d.madvises = a.madvises - b.madvises;
  d.memfd_creates = a.memfd_creates - b.memfd_creates;
  d.hugetlb_memfd_creates = a.hugetlb_memfd_creates - b.hugetlb_memfd_creates;
  d.ftruncates = a.ftruncates - b.ftruncates;
  return d;
}

class VmFaultMatrix {
 public:
  VmFaultMatrix(std::string name, const Scenario& scenario,
                std::string dir = "")
      : name_(std::move(name)), scenario_(scenario), dir_(std::move(dir)) {}

  void Run() {
    // Fault-free accounting run sizes the matrix: per-class op totals of
    // the scripted workload (genesis excluded — the counter is reset after
    // construction, exactly like the armed runs). The full sweep grows the
    // round count until the measured op surface clears the point floor —
    // every armed point then replays the SAME round count, so op indices
    // land where the accounting run measured them.
    uint64_t rounds = 1;
    FaultInjectingVmIo::Stats surface;
    for (;;) {
      FaultInjectingVmIo counter;
      auto column = MakeFaultableColumn(scenario_, &counter, dir_);
      ASSERT_TRUE(column.ok()) << column.status().ToString();
      const FaultInjectingVmIo::Stats genesis = counter.stats();
      counter.Arm(VmFaultPlan{});
      std::string detail;
      ASSERT_TRUE(RunScript(column->get(), rounds, &detail, scenario_.tiering))
          << name_ << " fault-free script: " << detail;
      surface = SubtractStats(counter.stats(), genesis);
      ASSERT_GT(surface.ops(), 0u) << name_ << ": script produced no VM ops";
      if (!FullSweep() || rounds >= kMaxRounds ||
          EstimatedPoints(surface) >= kMinFullPointsPerScenario) {
        break;
      }
      ++rounds;
    }

    std::cout << "[ matrix   ] " << name_ << ": rounds=" << rounds
              << " surface mmap=" << surface.mmaps
              << " munmap=" << surface.munmaps
              << " mremap=" << surface.mremaps
              << " mprotect=" << surface.mprotects << std::endl;

    uint64_t points = 0;
    uint64_t failures = 0;
    for (uint64_t t = 0; t < std::size(kTargets); ++t) {
      const TargetSpec& target = kTargets[t];
      const uint64_t class_total = ClassOps(target.op, surface);
      if (class_total == 0) continue;
      // Smoke: stride the any-target sweep and probe one midpoint per
      // specific class. Full: every index of every class, every kind.
      uint64_t stride = 1;
      uint64_t first = 1;
      const FaultKindSpec* kind_begin = std::begin(kKinds);
      const FaultKindSpec* kind_end = std::end(kKinds);
      if (!FullSweep()) {
        if (target.op == VmOp::kAny) {
          stride = std::max<uint64_t>(1, class_total / 8);
        } else {
          first = std::max<uint64_t>(1, class_total / 2);
          stride = class_total + 1;  // single midpoint
          kind_end = kind_begin + 1;
        }
      }
      for (const FaultKindSpec* kind = kind_begin; kind != kind_end; ++kind) {
        for (uint64_t op = first; op <= class_total; op += stride) {
          const uint64_t seed = PointSeed(t, kind->fail_errno, op);
          ++points;
          std::string point_detail;
          if (!RunPoint(target, *kind, op, seed, rounds, &point_detail)) {
            ++failures;
            ADD_FAILURE() << "VM-FAULT-POINT-FAILED scenario=" << name_
                          << " target=" << target.name
                          << " kind=" << kind->name << " op=" << op
                          << " seed=" << seed << " :: " << point_detail;
            if (failures >= 10) {
              ADD_FAILURE() << name_ << ": too many fault-point failures, "
                            << "aborting the sweep";
              return;
            }
          }
        }
      }
    }
    if (FullSweep()) {
      EXPECT_GE(points, kMinFullPointsPerScenario)
          << name_ << ": full sweep too small to be meaningful";
    }
    ::testing::Test::RecordProperty(name_ + "_points",
                                    static_cast<int>(points));
  }

 private:
  /// Accounting-run rounds are capped: if this much pool churn still
  /// leaves the surface under the floor, the sweep reports what it has
  /// (the EXPECT_GE below flags the shortfall instead of spinning).
  static constexpr uint64_t kMaxRounds = 16;

  /// Full-sweep size for a given op surface: every kind at every index of
  /// every non-empty class.
  static uint64_t EstimatedPoints(const FaultInjectingVmIo::Stats& s) {
    uint64_t estimate = 0;
    for (const TargetSpec& target : kTargets) {
      estimate += std::size(kKinds) * ClassOps(target.op, s);
    }
    return estimate;
  }

  bool RunPoint(const TargetSpec& target, const FaultKindSpec& kind,
                uint64_t op, uint64_t seed, uint64_t rounds,
                std::string* detail) {
    FaultInjectingVmIo io;
    auto column = MakeFaultableColumn(scenario_, &io, dir_);
    if (!column.ok()) {
      *detail = "genesis failed: " + column.status().ToString();
      return false;
    }
    VmFaultPlan plan;
    plan.op_index = op;
    plan.fail_errno = kind.fail_errno;
    plan.sticky = kind.sticky;
    plan.target = target.op;
    plan.seed = seed;
    io.Arm(plan);
    if (!RunScript(column->get(), rounds, detail, scenario_.tiering)) {
      return false;
    }
    return CheckRecovery(column->get(), &io, detail);
  }

  std::string name_;
  Scenario scenario_;
  std::string dir_;  // persist dir for tiering scenarios (recycled per point)
};

TEST(VmFaultMatrixTest, single_view) {
  VmFaultMatrix("single_view", {QueryMode::kSingleView, 8, false}).Run();
}

TEST(VmFaultMatrixTest, multi_view_cost) {
  VmFaultMatrix("multi_view_cost", {QueryMode::kMultiView, 8, true}).Run();
}

TEST(VmFaultMatrixTest, tight_budget) {
  VmFaultMatrix("tight_budget", {QueryMode::kSingleView, 2, false}).Run();
}

TEST(VmFaultMatrixTest, tiering) {
  // Durable scenario: the script demotes views, the routed pass promotes
  // them — every promote re-materialization mmap is a fault point, and the
  // exactness invariant proves the base-scan fallback covers each one.
  ScopedTempDir scratch("vm_fault_tiering");
  VmFaultMatrix("tiering",
                {QueryMode::kSingleView, 4, false, /*tiering=*/true},
                scratch.path() + "/col")
      .Run();
}

// ---------------------------------------------------------------------------
// Huge-page fault scenario (ISSUE 9): the 2 MiB machinery under the same
// errno matrix. The adaptive script above cannot reach this surface — its
// 16-page views never span a whole 512-page unit, so PromoteRange skips
// them all — so this scenario drives the arena-level lifecycle directly:
// promote/demote churn on a THP-capable column (the madvise surface),
// 4 KiB rewire churn across a unit boundary (mmap), and a per-cycle
// hugetlb creation attempt (memfd_create/ftruncate plus the
// reservation-probe mmap/munmap). Invariants:
//
//   1. degradation — PromoteRange/DemoteRange NEVER error under injected
//      madvise faults (a refused promotion stays at 4 KiB, counted in
//      huge_promote_failures); a faulted hugetlb probe degrades Create's
//      backing rather than failing creation (only a fault on the
//      plain-memfd fallback itself may surface, as a clean Status);
//   2. bit-identity — mapped slots read back the genesis pattern at every
//      cycle, whatever mix of granularities the faults left behind;
//   3. recovery — once disarmed, remap + full verification + another
//      promote/demote round and a hugetlb creation all run clean.

constexpr uint64_t kHugeScriptUnits = 2;
constexpr uint64_t kHugeScriptSlots = kHugeScriptUnits * kPagesPerHugeUnit;

uint64_t HugeMarker(uint64_t slot) {
  return slot * 0x9e3779b97f4a7c15ull + 0x5bd1e995u;
}

struct HugeScriptState {
  std::shared_ptr<PhysicalMemoryFile> file;
  std::unique_ptr<VirtualArena> arena;
};

bool VerifyHugeSlots(const HugeScriptState& state, uint64_t first,
                     uint64_t count, const std::string& step,
                     std::string* detail) {
  for (uint64_t s = first; s < first + count; ++s) {
    uint64_t got = 0;
    std::memcpy(&got, state.arena->SlotData(s), sizeof(got));
    if (got != HugeMarker(s)) {
      *detail = step + ": slot " + std::to_string(s) + " read " +
                std::to_string(got) + ", want " +
                std::to_string(HugeMarker(s));
      return false;
    }
  }
  return true;
}

/// Genesis (fault-free by construction — the caller arms AFTER this): a
/// THP-capable two-unit column, fully mapped, pattern-filled.
StatusOr<HugeScriptState> MakeHugeScriptArena(FaultInjectingVmIo* io) {
  auto file = PhysicalMemoryFile::Create(
      kHugeScriptSlots, MemoryFileBackend::kMemfd, io, HugePageRequest::kAuto);
  if (!file.ok()) return file.status();
  HugeScriptState state;
  state.file = std::make_shared<PhysicalMemoryFile>(std::move(*file));
  auto arena = VirtualArena::Create(state.file, kHugeScriptSlots);
  if (!arena.ok()) return arena.status();
  state.arena = std::move(*arena);
  VMSV_RETURN_IF_ERROR(state.arena->MapRange(0, 0, kHugeScriptSlots));
  for (uint64_t s = 0; s < kHugeScriptSlots; ++s) {
    const uint64_t marker = HugeMarker(s);
    std::memcpy(state.arena->SlotData(s), &marker, sizeof(marker));
  }
  return state;
}

bool RunHugeScript(FaultInjectingVmIo* io, HugeScriptState* state,
                   uint64_t cycles, std::string* detail) {
  VirtualArena* arena = state->arena.get();
  // The second unit churns between mapped and unmapped; either rewire call
  // may hit the injected fault, which leaves the PREVIOUS mapping state
  // (tracked here so only live slots are verified — the same way a
  // degraded view falls back without touching its pages).
  bool unit1_mapped = true;
  for (uint64_t c = 0; c < cycles; ++c) {
    const std::string cycle = "cycle " + std::to_string(c) + " ";
    const Status promoted = arena->PromoteRange(0, kHugeScriptSlots);
    if (!promoted.ok()) {
      *detail = cycle + "PromoteRange errored: " + promoted.ToString();
      return false;
    }
    // hugetlb units (VMSV_HUGETLB=1 genesis) are fixed-size by contract —
    // DemoteRange over them is defined to refuse, so the demote leg only
    // runs on THP/plain backings.
    if (state->file->huge_backing() != HugeBacking::kHugetlb) {
      const Status demoted = arena->DemoteRange(0, kHugeScriptSlots);
      if (!demoted.ok()) {
        *detail = cycle + "DemoteRange errored: " + demoted.ToString();
        return false;
      }
    }
    if (unit1_mapped &&
        arena->UnmapRange(kPagesPerHugeUnit, kPagesPerHugeUnit).ok()) {
      unit1_mapped = false;
    }
    if (!unit1_mapped &&
        arena->MapRange(kPagesPerHugeUnit, kPagesPerHugeUnit,
                        kPagesPerHugeUnit)
            .ok()) {
      unit1_mapped = true;
    }
    // A hugetlb column attempt per cycle: under fire the probe chain must
    // degrade the backing, never crash. (A fault on the plain fallback
    // memfd/ftruncate legitimately fails creation — with a clean Status,
    // which StatusOr already guarantees or the next line would abort.)
    auto hugetlb = PhysicalMemoryFile::Create(
        kPagesPerHugeUnit, MemoryFileBackend::kMemfd, io,
        HugePageRequest::kHugetlb);
    (void)hugetlb;
    if (!VerifyHugeSlots(*state, 0, kPagesPerHugeUnit, cycle + "unit0",
                         detail)) {
      return false;
    }
    if (unit1_mapped &&
        !VerifyHugeSlots(*state, kPagesPerHugeUnit, kPagesPerHugeUnit,
                         cycle + "unit1", detail)) {
      return false;
    }
  }
  return true;
}

bool CheckHugeRecovery(FaultInjectingVmIo* io, HugeScriptState* state,
                       std::string* detail) {
  io->Arm(VmFaultPlan{});
  VirtualArena* arena = state->arena.get();
  // Remap is idempotent over a still-mapped unit, so this restores the
  // full layout whichever half-state the faults left.
  const Status remapped =
      arena->MapRange(kPagesPerHugeUnit, kPagesPerHugeUnit, kPagesPerHugeUnit);
  if (!remapped.ok()) {
    *detail = "recovery remap failed: " + remapped.ToString();
    return false;
  }
  if (!VerifyHugeSlots(*state, 0, kHugeScriptSlots, "recovery", detail)) {
    return false;
  }
  const Status promoted = arena->PromoteRange(0, kHugeScriptSlots);
  if (!promoted.ok()) {
    *detail = "recovery PromoteRange failed: " + promoted.ToString();
    return false;
  }
  if (state->file->huge_backing() != HugeBacking::kHugetlb) {
    const Status demoted = arena->DemoteRange(0, kHugeScriptSlots);
    if (!demoted.ok()) {
      *detail = "recovery DemoteRange failed: " + demoted.ToString();
      return false;
    }
  }
  if (!VerifyHugeSlots(*state, 0, kHugeScriptSlots, "post-demote", detail)) {
    return false;
  }
  // And a hugetlb attempt with the faults gone must settle cleanly (the
  // pool if present, a degraded flavor otherwise) — no residue from the
  // faulted attempts.
  auto hugetlb = PhysicalMemoryFile::Create(kPagesPerHugeUnit,
                                            MemoryFileBackend::kMemfd, io,
                                            HugePageRequest::kHugetlb);
  if (!hugetlb.ok()) {
    *detail = "recovery hugetlb create failed: " + hugetlb.status().ToString();
    return false;
  }
  return true;
}

constexpr TargetSpec kHugeTargets[] = {
    {"any", VmOp::kAny},
    {"madvise", VmOp::kMadvise},
    {"mmap", VmOp::kMmap},
    {"munmap", VmOp::kMunmap},
    {"memfd_create", VmOp::kMemfdCreate},
    {"ftruncate", VmOp::kFtruncate},
};

class HugePageFaultMatrix {
 public:
  void Run() {
    // Fault-free accounting run sizes the sweep, exactly like VmFaultMatrix
    // (genesis excluded; recovery excluded — armed points count op indices
    // from Arm to the recovery disarm, so the surface measures only the
    // faultable window).
    uint64_t cycles = 2;
    FaultInjectingVmIo::Stats surface;
    for (;;) {
      FaultInjectingVmIo counter;
      auto state = MakeHugeScriptArena(&counter);
      ASSERT_TRUE(state.ok()) << state.status().ToString();
      const FaultInjectingVmIo::Stats genesis = counter.stats();
      counter.Arm(VmFaultPlan{});
      std::string detail;
      ASSERT_TRUE(RunHugeScript(&counter, &*state, cycles, &detail))
          << "huge fault-free script: " << detail;
      surface = SubtractStats(counter.stats(), genesis);
      ASSERT_GT(surface.ops(), 0u) << "huge script produced no VM ops";
      if (!FullSweep() || cycles >= kMaxCycles ||
          EstimatedPoints(surface) >= kMinFullPointsPerScenario) {
        break;
      }
      ++cycles;
    }

    std::cout << "[ matrix   ] huge_page: cycles=" << cycles
              << " surface madvise=" << surface.madvises
              << " mmap=" << surface.mmaps << " munmap=" << surface.munmaps
              << " memfd=" << surface.memfd_creates
              << " (hugetlb=" << surface.hugetlb_memfd_creates << ")"
              << " ftruncate=" << surface.ftruncates << std::endl;

    uint64_t points = 0;
    uint64_t failures = 0;
    for (uint64_t t = 0; t < std::size(kHugeTargets); ++t) {
      const TargetSpec& target = kHugeTargets[t];
      const uint64_t class_total = ClassOps(target.op, surface);
      if (class_total == 0) continue;  // e.g. madvise where THP is off
      uint64_t stride = 1;
      uint64_t first = 1;
      const FaultKindSpec* kind_begin = std::begin(kKinds);
      const FaultKindSpec* kind_end = std::end(kKinds);
      if (!FullSweep()) {
        if (target.op == VmOp::kAny) {
          stride = std::max<uint64_t>(1, class_total / 8);
        } else {
          first = std::max<uint64_t>(1, class_total / 2);
          stride = class_total + 1;  // single midpoint
          kind_end = kind_begin + 1;
        }
      }
      for (const FaultKindSpec* kind = kind_begin; kind != kind_end; ++kind) {
        for (uint64_t op = first; op <= class_total; op += stride) {
          const uint64_t seed = PointSeed(t, kind->fail_errno, op);
          ++points;
          std::string point_detail;
          if (!RunPoint(target, *kind, op, seed, cycles, &point_detail)) {
            ++failures;
            ADD_FAILURE() << "VM-FAULT-POINT-FAILED scenario=huge_page"
                          << " target=" << target.name
                          << " kind=" << kind->name << " op=" << op
                          << " seed=" << seed << " :: " << point_detail;
            if (failures >= 10) {
              ADD_FAILURE() << "huge_page: too many fault-point failures, "
                            << "aborting the sweep";
              return;
            }
          }
        }
      }
    }
    if (FullSweep()) {
      EXPECT_GE(points, kMinFullPointsPerScenario)
          << "huge_page: full sweep too small to be meaningful";
    }
    ::testing::Test::RecordProperty("huge_page_points",
                                    static_cast<int>(points));
  }

 private:
  static constexpr uint64_t kMaxCycles = 32;

  static uint64_t EstimatedPoints(const FaultInjectingVmIo::Stats& s) {
    uint64_t estimate = 0;
    for (const TargetSpec& target : kHugeTargets) {
      estimate += std::size(kKinds) * ClassOps(target.op, s);
    }
    return estimate;
  }

  bool RunPoint(const TargetSpec& target, const FaultKindSpec& kind,
                uint64_t op, uint64_t seed, uint64_t cycles,
                std::string* detail) {
    FaultInjectingVmIo io;
    auto state = MakeHugeScriptArena(&io);
    if (!state.ok()) {
      *detail = "genesis failed: " + state.status().ToString();
      return false;
    }
    VmFaultPlan plan;
    plan.op_index = op;
    plan.fail_errno = kind.fail_errno;
    plan.sticky = kind.sticky;
    plan.target = target.op;
    plan.seed = seed;
    io.Arm(plan);
    if (!RunHugeScript(&io, &*state, cycles, detail)) return false;
    return CheckHugeRecovery(&io, &*state, detail);
  }
};

TEST(VmFaultMatrixTest, huge_page_lifecycle) {
  HugePageFaultMatrix().Run();
}

// ---------------------------------------------------------------------------
// Huge-page seam contracts, pinned point by point: the probe chain's
// degradation at creation, the promote/demote madvise swallow, and the
// accountant's VMA split/merge model for huge advice.

TEST(VmFaultHugeSeamTest, HugetlbMemfdFaultDegradesBackingNotCreation) {
  if (HugePagesDisabledByEnv()) GTEST_SKIP() << "VMSV_NO_HUGEPAGES=1";
  VmFaultPlan plan;
  plan.op_index = 1;  // the MFD_HUGETLB create is the first memfd op
  plan.fail_errno = ENOMEM;
  plan.target = VmOp::kMemfdCreate;
  FaultInjectingVmIo io(plan);
  auto file = PhysicalMemoryFile::Create(kPagesPerHugeUnit,
                                         MemoryFileBackend::kMemfd, &io,
                                         HugePageRequest::kHugetlb);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_NE(file->huge_backing(), HugeBacking::kHugetlb);
  EXPECT_EQ(io.stats().hugetlb_memfd_creates, 1u);  // attempted, faulted
  EXPECT_EQ(io.stats().faults_injected, 1u);
  EXPECT_GE(io.stats().memfd_creates, 2u);  // plus the plain fallback
}

TEST(VmFaultHugeSeamTest, HugetlbReservationProbeFaultDegrades) {
  if (HugePagesDisabledByEnv()) GTEST_SKIP() << "VMSV_NO_HUGEPAGES=1";
  VmFaultPlan plan;
  plan.op_index = 1;  // first mmap = the whole-file reservation probe
  plan.fail_errno = ENOMEM;  // exactly what an undersized pool returns
  plan.target = VmOp::kMmap;
  FaultInjectingVmIo io(plan);
  auto file = PhysicalMemoryFile::Create(kPagesPerHugeUnit,
                                         MemoryFileBackend::kMemfd, &io,
                                         HugePageRequest::kHugetlb);
  // Whether or not this kernel even creates MFD_HUGETLB fds (without them
  // the probe mmap never runs and the armed fault never fires), the
  // outcome is the same contract: creation succeeds, backing is degraded.
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_NE(file->huge_backing(), HugeBacking::kHugetlb);
  EXPECT_EQ(io.stats().hugetlb_memfd_creates, 1u);
  EXPECT_LE(io.stats().faults_injected, 1u);
}

TEST(VmFaultHugeSeamTest, PromoteAndDemoteSwallowMadviseFaults) {
  if (HugePagesDisabledByEnv()) GTEST_SKIP() << "VMSV_NO_HUGEPAGES=1";
  FaultInjectingVmIo io;
  auto state = MakeHugeScriptArena(&io);
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  VirtualArena* arena = state->arena.get();
  if (state->file->huge_backing() != HugeBacking::kThp ||
      !arena->HugeCapable()) {
    GTEST_SKIP() << "needs a THP-backed arena (backing="
                 << HugeBackingName(state->file->huge_backing()) << ")";
  }

  const uint64_t madvises_before = io.stats().madvises;
  VmFaultPlan plan;
  plan.op_index = 1;
  plan.fail_errno = ENOMEM;
  plan.sticky = true;
  plan.target = VmOp::kMadvise;
  io.Arm(plan);
  // Promotion under sticky madvise exhaustion: both units really attempt,
  // both are refused, neither surfaces an error — the defining property.
  ASSERT_TRUE(arena->PromoteRange(0, kHugeScriptSlots).ok());
  EXPECT_EQ(arena->huge_unit_count(), 0u);
  EXPECT_EQ(arena->huge_promote_attempts(), kHugeScriptUnits);
  EXPECT_EQ(arena->huge_promote_failures(), kHugeScriptUnits);
  EXPECT_GT(io.stats().madvises, madvises_before);
  EXPECT_GT(io.stats().faults_injected, 0u);
  // Demotion is best-effort by the same contract (the 4 KiB overwrite that
  // follows a real demotion splits the PMD regardless of the advice).
  ASSERT_TRUE(arena->DemoteRange(0, kHugeScriptSlots).ok());
  std::string detail;
  ASSERT_TRUE(VerifyHugeSlots(*state, 0, kHugeScriptSlots, "under faults",
                              &detail))
      << detail;

  io.Arm(VmFaultPlan{});
  // Refused units never entered huge_units_, so the retry re-attempts them.
  ASSERT_TRUE(arena->PromoteRange(0, kHugeScriptSlots).ok());
  EXPECT_EQ(arena->huge_promote_attempts(), 2 * kHugeScriptUnits);
}

TEST(VmFaultHugeSeamTest, HugeAdviceSplitsAndRemergesAccountantVmas) {
  FaultInjectingVmIo io;
  const uint64_t len = 4 * kHugePageSize;
  auto fd = io.MemfdCreate("vma-advice", MFD_CLOEXEC);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(io.Ftruncate(*fd, len, "ftruncate").ok());
  auto base = io.Mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, *fd,
                      0, "mmap");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  uint8_t* p = static_cast<uint8_t*>(*base);
  EXPECT_EQ(io.vma_count(), 1u);

  // Sub-range advice is a vm_flags change mid-VMA: the kernel splits the
  // mapping in three, and so must the accountant.
  const Status advised =
      io.Madvise(p + kHugePageSize, kHugePageSize, MADV_HUGEPAGE, "madvise");
  if (!advised.ok()) {
    ASSERT_TRUE(io.Munmap(p, len, "munmap").ok());
    ::close(*fd);
    GTEST_SKIP() << "MADV_HUGEPAGE unsupported on shmem here: "
                 << advised.ToString();
  }
  EXPECT_EQ(io.vma_count(), 3u);
  // Uniform advice over the whole mapping re-merges the pieces.
  ASSERT_TRUE(io.Madvise(p, len, MADV_HUGEPAGE, "madvise").ok());
  EXPECT_EQ(io.vma_count(), 1u);
  ASSERT_TRUE(io.Munmap(p, len, "munmap").ok());
  EXPECT_EQ(io.vma_count(), 0u);
  ::close(*fd);
}

TEST(VmFaultHugeSeamTest, HugeAdviceSplitRespectsVmaBudget) {
  FaultInjectingVmIo io;
  const uint64_t len = 4 * kHugePageSize;
  auto fd = io.MemfdCreate("vma-budget", MFD_CLOEXEC);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(io.Ftruncate(*fd, len, "ftruncate").ok());
  auto base = io.Mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, *fd,
                      0, "mmap");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  uint8_t* p = static_cast<uint8_t*>(*base);
  ASSERT_EQ(io.vma_count(), 1u);

  // A 1 -> 3 split under max_vmas=2 must be refused with ENOMEM BEFORE the
  // kernel sees the call (vm.max_map_count charges VMA splits exactly
  // like mappings), leaving the accountant untouched.
  VmFaultPlan plan;
  plan.max_vmas = 2;
  io.Arm(plan);
  const Status advised =
      io.Madvise(p + kHugePageSize, kHugePageSize, MADV_HUGEPAGE, "madvise");
  ASSERT_FALSE(advised.ok());
  EXPECT_EQ(advised.sys_errno(), ENOMEM);
  EXPECT_EQ(io.stats().budget_rejections, 1u);
  EXPECT_EQ(io.vma_count(), 1u);

  io.Arm(VmFaultPlan{});
  ASSERT_TRUE(io.Munmap(p, len, "munmap").ok());
  ::close(*fd);
}

// ---------------------------------------------------------------------------
// Satellite: PartialViewIndex error contract (the historical abort paths).

TEST(PartialViewIndexTest, ReplaceAndRemoveRejectForeignViews) {
  DistributionSpec spec;
  spec.kind = DataDistribution::kSine;
  spec.max_value = kMaxValue;
  auto column = MakeColumn(spec, NumRows());
  ASSERT_TRUE(column.ok()) << column.status().ToString();

  auto pooled = BuildViewByScan(**column, 0, kMaxValue / 2);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  auto foreign = BuildViewByScan(**column, 0, kMaxValue / 4);
  ASSERT_TRUE(foreign.ok()) << foreign.status().ToString();
  auto candidate = BuildViewByScan(**column, 0, kMaxValue / 3);
  ASSERT_TRUE(candidate.ok()) << candidate.status().ToString();

  PartialViewIndex index;
  VirtualView* pooled_ptr = pooled->get();
  index.Insert(std::move(pooled).ValueOrDie());

  // A victim that is not a pool member must fail cleanly (this used to be
  // a VMSV_CHECK abort), leave the pool untouched, and destroy the
  // candidate per the contract.
  auto replaced =
      index.Replace(foreign->get(), std::move(candidate).ValueOrDie());
  ASSERT_FALSE(replaced.ok());
  EXPECT_EQ(replaced.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_EQ(index.num_partial_views(), 1u);
  EXPECT_EQ(index.views()[0].get(), pooled_ptr);

  auto removed = index.Remove(foreign->get());
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(index.num_partial_views(), 1u);

  // The genuine member still detaches.
  auto detached = index.Remove(pooled_ptr);
  ASSERT_TRUE(detached.ok()) << detached.status().ToString();
  EXPECT_EQ((*detached).get(), pooled_ptr);
  EXPECT_EQ(index.num_partial_views(), 0u);
}

// ---------------------------------------------------------------------------
// Creation-time faults: the backing file's own syscalls.

TEST(VmFaultSeamTest, MemfdCreateFailureSurfacesErrno) {
  VmFaultPlan plan;
  plan.op_index = 1;
  plan.fail_errno = EMFILE;
  plan.target = VmOp::kMemfdCreate;
  FaultInjectingVmIo io(plan);
  auto file = PhysicalMemoryFile::Create(4, MemoryFileBackend::kMemfd, &io);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().sys_errno(), EMFILE);

  io.Arm(VmFaultPlan{});
  auto retry = PhysicalMemoryFile::Create(4, MemoryFileBackend::kMemfd, &io);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(VmFaultSeamTest, FtruncateEnospcFailsCreationCleanly) {
  VmFaultPlan plan;
  plan.op_index = 1;
  plan.fail_errno = ENOSPC;
  plan.target = VmOp::kFtruncate;
  FaultInjectingVmIo io(plan);
  auto file = PhysicalMemoryFile::Create(4, MemoryFileBackend::kMemfd, &io);
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().sys_errno(), ENOSPC);
}

TEST(VmFaultSeamTest, GrowEnospcIsRetryable) {
  FaultInjectingVmIo io;
  auto file = PhysicalMemoryFile::Create(4, MemoryFileBackend::kMemfd, &io);
  ASSERT_TRUE(file.ok()) << file.status().ToString();

  VmFaultPlan plan;
  plan.op_index = 1;
  plan.fail_errno = ENOSPC;
  plan.target = VmOp::kFtruncate;
  io.Arm(plan);
  const Status grown = file->Grow(8);
  ASSERT_FALSE(grown.ok());
  EXPECT_EQ(grown.sys_errno(), ENOSPC);
  EXPECT_EQ(file->num_pages(), 4u);  // the failed grow applied nothing

  io.Arm(VmFaultPlan{});
  ASSERT_TRUE(file->Grow(8).ok());
  EXPECT_EQ(file->num_pages(), 8u);
}

// ---------------------------------------------------------------------------
// The vm.max_map_count-style budget: rejections degrade service (exact
// answers from the base column) and pressure relief sheds mappings.

TEST(VmFaultDegradationTest, MappingBudgetDegradesExactly) {
  FaultInjectingVmIo io;
  const Scenario scenario{QueryMode::kSingleView, 4, false};
  auto column = MakeFaultableColumn(scenario, &io);
  ASSERT_TRUE(column.ok()) << column.status().ToString();

  // Clamp the budget to exactly the live (post-genesis) mapping count: any
  // materialization whose rewire splits the anonymous reservation adds
  // segments and must be refused, exactly like vm.max_map_count.
  std::string detail;
  VmFaultPlan plan;
  plan.max_vmas = io.vma_count();
  io.Arm(plan);

  ASSERT_TRUE(RunScript(column->get(), 1, &detail)) << detail;
  EXPECT_GT(io.stats().budget_rejections, 0u);
  const ColumnHealth health = (*column)->Health();
  EXPECT_GT(health.map_failures, 0u);
  EXPECT_GT(health.base_fallbacks + health.emergency_evictions, 0u);

  // Lifting the budget recovers fully.
  ASSERT_TRUE(CheckRecovery(column->get(), &io, &detail)) << detail;
}

// ---------------------------------------------------------------------------
// Satellite: runtime mremap failure mid-compaction.

TEST(VmFaultCompactionTest, MremapFaultFallsBackToRewiring) {
  if (!VirtualArena::MremapSupported()) {
    GTEST_SKIP() << "no mremap on this platform";
  }
  FaultInjectingVmIo io;
  auto file =
      PhysicalMemoryFile::Create(TestPages(), MemoryFileBackend::kMemfd, &io);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  auto shared = std::make_shared<PhysicalMemoryFile>(std::move(*file));
  auto column = PhysicalColumn::Attach(std::move(shared), NumRows());
  ASSERT_TRUE(column.ok()) << column.status().ToString();
  DistributionSpec spec;
  spec.kind = DataDistribution::kSine;
  spec.max_value = kMaxValue;
  FillColumn(spec, column->get());

  // Full-range view: every column page is a member, so hole punching at
  // known pages is deterministic.
  auto view = BuildViewByScan(**column, 0, kMaxValue);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_TRUE((*view)->EnsureMaterialized().ok());
  ASSERT_TRUE((*view)->RemovePage(2).ok());
  ASSERT_TRUE((*view)->RemovePage(5).ok());
  ASSERT_TRUE((*view)->RemovePage(9).ok());
  ASSERT_FALSE((*view)->is_dense());

  const RangeQuery probe{0, kMaxValue};
  const PageScanResult before = (*view)->Scan(probe);

  // Every mremap the compaction attempts fails; each move must fall back
  // to rewiring and the result must be bit-identical.
  VmFaultPlan plan;
  plan.op_index = 1;
  plan.fail_errno = ENOMEM;
  plan.sticky = true;
  plan.target = VmOp::kMremap;
  io.Arm(plan);

  ViewCompactionOptions options;
  options.use_mremap = true;
  ViewCompactionStats stats;
  ASSERT_TRUE((*view)->Compact(options, &stats).ok());
  EXPECT_EQ(stats.mremap_moves, 0u);
  EXPECT_GT(stats.remap_moves, 0u);
  EXPECT_GT(io.stats().faults_injected, 0u);  // mremap was really attempted
  EXPECT_TRUE((*view)->is_dense());

  const PageScanResult after = (*view)->Scan(probe);
  EXPECT_EQ(before.match_count, after.match_count);
  EXPECT_EQ(before.sum, after.sum);
}

TEST(VmFaultCompactionTest, CompactionFailsCleanlyWhenAllMappingOpsFault) {
  FaultInjectingVmIo io;
  auto file =
      PhysicalMemoryFile::Create(TestPages(), MemoryFileBackend::kMemfd, &io);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  auto shared = std::make_shared<PhysicalMemoryFile>(std::move(*file));
  auto column = PhysicalColumn::Attach(std::move(shared), NumRows());
  ASSERT_TRUE(column.ok()) << column.status().ToString();
  DistributionSpec spec;
  spec.kind = DataDistribution::kSine;
  spec.max_value = kMaxValue;
  FillColumn(spec, column->get());

  auto view = BuildViewByScan(**column, 0, kMaxValue);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_TRUE((*view)->EnsureMaterialized().ok());
  ASSERT_TRUE((*view)->RemovePage(3).ok());

  // Sticky exhaustion of EVERY mapping op: the compaction cannot build its
  // replacement arena and must fail with a clean errno Status — the
  // adaptive layer's flush path then drops the view (abandoned_compactions)
  // rather than keep mappings in an unspecified state.
  VmFaultPlan plan;
  plan.op_index = 1;
  plan.fail_errno = ENOMEM;
  plan.sticky = true;
  io.Arm(plan);
  const Status compacted = (*view)->Compact();
  ASSERT_FALSE(compacted.ok());
  EXPECT_EQ(compacted.sys_errno(), ENOMEM);
}

// ---------------------------------------------------------------------------
// Durable ENOSPC: the journal append fails, the column flips to explicit
// read-only degradation, reads stay exact, and the first successful append
// clears the flag.

TEST(VmFaultDegradationTest, DurableEnospcFlipsReadOnlyAndRecovers) {
  ScopedTempDir tmp("vm_fault_enospc");
  FaultInjectingIo storage_io;
  AdaptiveConfig config;
  config.storage.io = &storage_io;
  auto table_r = Db::CreateDurable(tmp.path(), NumRows(), DbOptions{config});
  ASSERT_TRUE(table_r.ok()) << table_r.status().ToString();
  OwnedColumn column{std::move(table_r).ValueOrDie()};

  FaultPlan disk_full;
  disk_full.kind = FaultKind::kFailOp;
  disk_full.op_index = 1;
  disk_full.fail_errno = ENOSPC;
  storage_io.Arm(disk_full);

  const Status stalled = column->Update(5, 123);
  ASSERT_FALSE(stalled.ok());
  EXPECT_EQ(stalled.sys_errno(), ENOSPC);
  ColumnHealth health = column->Health();
  EXPECT_TRUE(health.degraded_read_only);
  EXPECT_EQ(health.read_only_entries, 1u);
  EXPECT_EQ(health.journal_stalls, 1u);
  // The rejected update applied nothing.
  EXPECT_EQ(column->column().Get(5), 0u);

  // Reads keep answering exactly while write-degraded.
  const RangeQuery q{0, kMaxValue};
  auto oracle = column->ExecuteFullScan(q);
  ASSERT_TRUE(oracle.ok());
  auto exec = column->Execute(q);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->match_count, oracle->match_count);
  EXPECT_EQ(exec->sum, oracle->sum);

  // A second rejected append does not double-count the transition.
  storage_io.Arm(disk_full);
  ASSERT_FALSE(column->Update(6, 456).ok());
  health = column->Health();
  EXPECT_EQ(health.read_only_entries, 1u);
  EXPECT_EQ(health.journal_stalls, 2u);

  // Space returns: the next append succeeds and the flag self-clears.
  storage_io.Arm(FaultPlan{});
  ASSERT_TRUE(column->Update(5, 123).ok());
  health = column->Health();
  EXPECT_FALSE(health.degraded_read_only);
  EXPECT_EQ(health.read_only_exits, 1u);
  EXPECT_EQ(column->column().Get(5), 123u);
}

// ---------------------------------------------------------------------------
// The runner's health surface: a workload under sticky exhaustion still
// verifies bit-exactly against its own baseline, and the report says HOW
// degraded the run was.

TEST(VmFaultDegradationTest, RunnerVerifiesUnderStickyExhaustion) {
  FaultInjectingVmIo io;
  const Scenario scenario{QueryMode::kSingleView, 8, false};
  auto column = MakeFaultableColumn(scenario, &io);
  ASSERT_TRUE(column.ok()) << column.status().ToString();

  VmFaultPlan plan;
  plan.op_index = 1;
  plan.fail_errno = ENOMEM;
  plan.sticky = true;
  io.Arm(plan);

  RunnerOptions options;
  options.verify_results = true;
  options.warmup = false;
  // Two passes: the first adapts (lazy candidates, no mapping work), the
  // second routes into those views and hits the exhausted mapping layer.
  std::vector<RangeQuery> queries = ScriptQueries(0);
  const std::vector<RangeQuery> again = queries;
  queries.insert(queries.end(), again.begin(), again.end());
  auto report = RunWorkload(column->table.get(), queries, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->health.base_fallbacks, 0u);
  EXPECT_GT(report->health.map_failures, 0u);
  EXPECT_TRUE(report->health.mapping_pressure);
}

}  // namespace
}  // namespace vmsv
