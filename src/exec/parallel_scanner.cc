#include "exec/parallel_scanner.h"

#include <algorithm>
#include <vector>

#include "exec/scan_kernels.h"
#include "util/env.h"

namespace vmsv {

uint64_t DefaultSerialCutoffPages() {
  static const uint64_t cached = GetEnvUint64("VMSV_SERIAL_CUTOFF", 2048);
  return cached;
}

ParallelScanner::ParallelScanner(const ParallelScanOptions& options)
    : threads_(options.threads > 0 ? options.threads : DefaultScanThreads()),
      serial_cutoff_(options.serial_cutoff != ~uint64_t{0}
                         ? options.serial_cutoff
                         : DefaultSerialCutoffPages()) {}

unsigned ParallelScanner::NumShards(uint64_t n_items) const {
  if (threads_ <= 1 || n_items <= serial_cutoff_) return 1;
  // Never more shards than items: empty shards would be wasted wakeups.
  return n_items < threads_ ? static_cast<unsigned>(n_items) : threads_;
}

PageScanResult ParallelScanner::ScanPages(const Value* base,
                                          uint64_t num_pages,
                                          const RangeQuery& q) const {
  return ScanShardsMerged(num_pages, [&](uint64_t begin, uint64_t end) {
    return ScanPage(base + begin * kValuesPerPage,
                    (end - begin) * kValuesPerPage, q);
  });
}

PageScanResult ParallelScanner::ScanPageRuns(const Value* base,
                                             const std::vector<PageRun>& runs,
                                             const RangeQuery& q) const {
  // Shard over the concatenated PAGE space, not the run list: one huge run
  // must still spread across the pool, and a tail of tiny runs must not
  // capsize one shard. prefix[i] = pages before run i.
  std::vector<uint64_t> prefix(runs.size() + 1, 0);
  for (size_t i = 0; i < runs.size(); ++i) {
    prefix[i + 1] = prefix[i] + runs[i].num_pages;
  }
  const uint64_t total_pages = prefix.back();
  return ScanShardsMerged(total_pages, [&](uint64_t begin, uint64_t end) {
    PageScanResult r;
    size_t ri = static_cast<size_t>(
        std::upper_bound(prefix.begin(), prefix.end(), begin) -
        prefix.begin() - 1);
    uint64_t pos = begin;
    while (pos < end) {
      const uint64_t run_end = prefix[ri + 1];
      if (pos >= run_end) {  // skip empty runs
        ++ri;
        continue;
      }
      const uint64_t take = (end < run_end ? end : run_end) - pos;
      const uint64_t run_offset = pos - prefix[ri];
      r.Merge(ScanPage(
          base + (runs[ri].start_page + run_offset) * kValuesPerPage,
          take * kValuesPerPage, q));
      pos += take;
      ++ri;
    }
    return r;
  });
}

}  // namespace vmsv
