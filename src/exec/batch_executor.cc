#include "exec/batch_executor.h"

#include <algorithm>
#include <numeric>

#include "exec/scan_kernels.h"

namespace vmsv {

std::vector<BatchGroup> GroupOverlappingQueries(
    const std::vector<RangeQuery>& queries) {
  // Sweep in lo order: a query starting past the running hull's hi opens a
  // new component; anything else extends the current one. O(n log n), and
  // transitive overlap falls out of the growing hull.
  std::vector<size_t> order(queries.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&queries](size_t a, size_t b) {
    return queries[a].lo < queries[b].lo;
  });

  std::vector<BatchGroup> groups;
  for (const size_t qi : order) {
    const RangeQuery& q = queries[qi];
    if (groups.empty() || q.lo > groups.back().hull.hi) {
      groups.push_back(BatchGroup{q, {qi}});
      continue;
    }
    BatchGroup& group = groups.back();
    group.hull.hi = std::max(group.hull.hi, q.hi);
    group.members.push_back(qi);
  }
  for (BatchGroup& group : groups) {
    std::sort(group.members.begin(), group.members.end());
  }
  std::sort(groups.begin(), groups.end(),
            [](const BatchGroup& a, const BatchGroup& b) {
              return a.members.front() < b.members.front();
            });
  return groups;
}

namespace {

/// Evaluates every query against one page's data, which the first kernel
/// call pulls through the cache hierarchy for all the rest. Per overlap
/// group, a hull pre-test skips the member kernels wholesale on pages no
/// member can match; it only pays off with >= 2 members (with one, ScanPage
/// alone is strictly cheaper than ContainsAny + ScanPage).
void ScanPageForGroups(const Value* data,
                       const std::vector<RangeQuery>& queries,
                       const std::vector<BatchGroup>& groups,
                       PageScanResult* acc) {
  for (const BatchGroup& group : groups) {
    if (group.members.size() >= 2 &&
        !PageContainsAny(data, kValuesPerPage, group.hull)) {
      continue;  // no value in the hull => no member matches => all-zero
    }
    for (const size_t qi : group.members) {
      acc[qi].Merge(ScanPage(data, kValuesPerPage, queries[qi]));
    }
  }
}

}  // namespace

std::vector<PageScanResult> BatchExecutor::SharedScanPages(
    const Value* base, uint64_t num_pages,
    const std::vector<RangeQuery>& queries) const {
  std::vector<PageScanResult> results(queries.size());
  if (queries.empty() || num_pages == 0) return results;
  const std::vector<BatchGroup> groups = GroupOverlappingQueries(queries);

  const ParallelScanner scanner(options_);
  const unsigned shards = scanner.NumShards(num_pages);
  // partial[shard * Q + i] accumulates query i on that shard; merged in
  // shard order below, exactly like ScanShardsMerged does per query.
  std::vector<PageScanResult> partial(static_cast<size_t>(shards) *
                                      queries.size());
  scanner.ForShards(num_pages, [&](unsigned shard, uint64_t begin,
                                   uint64_t end) {
    PageScanResult* acc = partial.data() + size_t{shard} * queries.size();
    for (uint64_t page = begin; page < end; ++page) {
      ScanPageForGroups(base + page * kValuesPerPage, queries, groups, acc);
    }
  });
  for (unsigned shard = 0; shard < shards; ++shard) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i].Merge(partial[size_t{shard} * queries.size() + i]);
    }
  }
  return results;
}

std::vector<PageScanResult> BatchExecutor::SharedScanPageRuns(
    const Value* base, const std::vector<PageRun>& runs,
    const std::vector<RangeQuery>& queries) const {
  std::vector<PageScanResult> results(queries.size());
  if (queries.empty()) return results;
  const std::vector<BatchGroup> groups = GroupOverlappingQueries(queries);

  // Same concatenated-page-space sharding as ParallelScanner::ScanPageRuns.
  std::vector<uint64_t> prefix(runs.size() + 1, 0);
  for (size_t i = 0; i < runs.size(); ++i) {
    prefix[i + 1] = prefix[i] + runs[i].num_pages;
  }
  const uint64_t total_pages = prefix.back();
  if (total_pages == 0) return results;

  const ParallelScanner scanner(options_);
  const unsigned shards = scanner.NumShards(total_pages);
  std::vector<PageScanResult> partial(static_cast<size_t>(shards) *
                                      queries.size());
  scanner.ForShards(total_pages, [&](unsigned shard, uint64_t begin,
                                     uint64_t end) {
    PageScanResult* acc = partial.data() + size_t{shard} * queries.size();
    size_t ri = static_cast<size_t>(
        std::upper_bound(prefix.begin(), prefix.end(), begin) -
        prefix.begin() - 1);
    for (uint64_t pos = begin; pos < end; ++ri) {
      const uint64_t run_end = prefix[ri + 1];
      if (pos >= run_end) continue;  // skip empty runs
      const uint64_t take = (end < run_end ? end : run_end) - pos;
      const uint64_t first = runs[ri].start_page + (pos - prefix[ri]);
      for (uint64_t p = 0; p < take; ++p) {
        ScanPageForGroups(base + (first + p) * kValuesPerPage, queries,
                          groups, acc);
      }
      pos += take;
    }
  });
  for (unsigned shard = 0; shard < shards; ++shard) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i].Merge(partial[size_t{shard} * queries.size() + i]);
    }
  }
  return results;
}

}  // namespace vmsv
