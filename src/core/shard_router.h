// ShardedTable — shard-per-core scale-out for a logical column
// (ROADMAP "Shard-per-core scale-out + serving layer").
//
// A logical column of P pages is partitioned across N AdaptiveColumn
// shards, each a complete engine of its own: its own maintenance mutex,
// view pool, lifecycle manager, journal, and (when durable) persist
// subdirectory — so adaptation, flushes, and demotion on one shard never
// serialize the others. Work reaches a shard through its ShardPool
// (exec/shard_pool.h), whose workers are optionally pinned to the shard's
// core (VMSV_PIN_CORES=1, best-effort via the CpuAffinity seam).
//
// PARTITIONING is by PAGE, not row: shard i owns either a balanced
// contiguous page block (kRange) or every page p with p % N == i (kHash).
// Page granularity is what makes sharded results BIT-IDENTICAL to an
// unsharded oracle: the shards' pages are exactly a partition of the
// oracle's pages (including the single zero-filled tail page), so summing
// per-shard match_count/sum in shard order — associative wrap-around
// uint64 adds — reproduces the oracle's page-wise scan exactly. Updates
// route by row to exactly one shard (the one owning the row's page).
//
// QUERY FAN-OUT is pruned by per-shard VALUE ZONES: each shard keeps a
// conservative [min, max] over every value in its pages, computed by one
// pass at create/open and only ever WIDENED by updates. A query visits
// just the shards whose zone intersects its predicate; skipped shards
// provably contribute zero matches, so pruning never affects results.
//
// DURABLE LAYOUT: dir/TABLE (a small text descriptor: version, shard
// count, partition kind, row count) plus dir/shard-000/ ... each holding a
// self-contained durable column. Checkpoint iterates the shards; recovery
// is per shard, so a kill between per-shard checkpoints reopens every
// shard at its own journal-consistent point and the TABLE's contract
// (acknowledged updates survive) still holds table-wide.

#ifndef VMSV_CORE_SHARD_ROUTER_H_
#define VMSV_CORE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_layer.h"
#include "core/db.h"
#include "exec/shard_pool.h"
#include "storage/types.h"
#include "util/status.h"

namespace vmsv {

/// The page-to-shard assignment of one table. Pure arithmetic over
/// (kind, shards, num_rows) — persisted in the TABLE descriptor, so every
/// reopen routes identically.
struct PartitionSpec {
  PartitionKind kind = PartitionKind::kRange;
  uint32_t shards = 1;
  uint64_t num_rows = 0;

  /// Total pages of the logical column (rounded up like PhysicalColumn).
  uint64_t TotalPages() const;
  /// Shard owning global page `page`.
  uint32_t ShardOfPage(uint64_t page) const;
  /// Shard owning global row `row`.
  uint32_t ShardOfRow(uint64_t row) const;
  /// Pages shard `s` owns.
  uint64_t ShardPages(uint32_t s) const;
  /// Rows shard `s` owns (its pages' rows; only the shard holding the
  /// globally-last page can end mid-page).
  uint64_t ShardRows(uint32_t s) const;
  /// Global page backing shard `s`'s local page `lp` (ascending in lp, so
  /// the global tail page is always a shard's LAST local page).
  uint64_t GlobalPage(uint32_t s, uint64_t lp) const;
  /// Shard-local row id of global row `row` on ShardOfRow(row).
  uint64_t LocalRow(uint64_t row) const;
};

/// Writes `dir`/TABLE (atomic tmp+rename through `io`; null = real I/O).
Status WriteTableDescriptor(const std::string& dir, const PartitionSpec& spec,
                            StorageIo* io);

/// Reads `dir`/TABLE. Error contract: NotFound when absent, IoError on a
/// malformed descriptor.
StatusOr<PartitionSpec> ReadTableDescriptor(const std::string& dir);

/// \internal The sharded Table implementation behind vmsv::Db. Constructed
/// through Db::Create/CreateDurable/Open only.
class ShardedTable : public Table {
 public:
  /// Builds an in-memory sharded table, filling global row r with
  /// value_of(r).
  static StatusOr<std::unique_ptr<Table>> Create(
      uint64_t num_rows, const std::function<Value(uint64_t)>& value_of,
      const DbOptions& options);

  /// Creates the durable layout (descriptor + shard subdirectories).
  static StatusOr<std::unique_ptr<Table>> CreateDurable(
      const std::string& dir, uint64_t num_rows, const DbOptions& options);

  /// Reopens a durable sharded table from its descriptor.
  static StatusOr<std::unique_ptr<Table>> Open(const std::string& dir,
                                               const PartitionSpec& spec,
                                               const DbOptions& options);

  StatusOr<QueryExecution> Execute(const RangeQuery& q) override;
  StatusOr<BatchExecution> ExecuteBatch(
      const std::vector<RangeQuery>& queries) override;
  StatusOr<QueryExecution> ExecuteFullScan(const RangeQuery& q) const override;
  Status Update(uint64_t row, Value new_value) override;
  StatusOr<UpdateApplyStats> FlushUpdates() override;
  Status Checkpoint() override;
  TableHealth Health() const override;
  CumulativeStats Metrics() const override;
  DurabilityStats Durability() const override;

  uint64_t num_rows() const override { return spec_.num_rows; }
  uint64_t num_pages() const override { return spec_.TotalPages(); }
  uint32_t num_shards() const override {
    return static_cast<uint32_t>(shards_.size());
  }
  bool is_durable() const override { return durable_; }
  AdaptiveColumn* shard(uint32_t i) override { return shards_[i]->column.get(); }

  const PartitionSpec& partition() const { return spec_; }

  /// Shards Execute(q) would visit, ascending — the zone-pruning decision
  /// exposed for routing-determinism tests.
  std::vector<uint32_t> RouteShards(const RangeQuery& q) const;

 private:
  /// One shard's engine + executor + value zone. Zone bounds are relaxed
  /// atomics: updates widen them concurrently with routing reads, and a
  /// conservatively-stale bound only costs an extra shard visit.
  struct Shard {
    std::unique_ptr<AdaptiveColumn> column;
    std::unique_ptr<ShardPool> pool;
    std::atomic<Value> zone_lo{~Value{0}};
    std::atomic<Value> zone_hi{0};
    /// True once any value exists (a zoneless empty shard matches nothing).
    std::atomic<bool> zone_set{false};
  };

  ShardedTable(PartitionSpec spec, bool durable) : spec_(spec), durable_(durable) {}

  /// Builds the per-shard pools (affinity per options) — shared tail of
  /// every factory.
  void StartPools(const DbOptions& options);

  /// One pass over shard `s`'s pages (zero tail included, matching what
  /// scans see) re-deriving its value zone.
  void RecomputeZone(uint32_t s);

  void WidenZone(Shard& shard, Value v);

  bool ZoneIntersects(const Shard& shard, const RangeQuery& q) const;

  /// Runs fn(position) on each target shard's pool concurrently and waits
  /// (fn receives the POSITION within `targets`, not the shard id).
  /// Position 0 runs inline on the caller.
  void FanOut(const std::vector<uint32_t>& targets,
              const std::function<void(size_t)>& fn) const;

  PartitionSpec spec_;
  bool durable_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace vmsv

#endif  // VMSV_CORE_SHARD_ROUTER_H_
