#include "core/view_lifecycle.h"

#include <algorithm>
#include <cmath>

#include "util/macros.h"

namespace vmsv {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kDropNewest: return "drop_newest";
    case EvictionPolicy::kCostAware: return "cost_aware";
  }
  return "unknown";
}

bool ViewLifecycleManager::ShouldCompact(const VirtualView& view) const {
  if (!config_.enable_compaction) return false;
  if (!view.is_materialized() || view.num_pages() == 0) return false;
  // Hole-free views have no fragmentation to reclaim, but may still be
  // file-scattered — the sort-only trigger's territory.
  if (view.hole_slots() == 0) return ShouldSortCompact(view);
  const uint64_t runs = view.num_slot_runs();
  if (runs < config_.compaction_min_runs) return false;
  return static_cast<double>(runs) >
         config_.compaction_run_ratio * static_cast<double>(view.num_pages());
}

bool ViewLifecycleManager::ShouldSortCompact(const VirtualView& view) const {
  if (!config_.enable_compaction) return false;
  if (config_.sort_compaction_file_run_ratio <= 0) return false;
  if (!config_.compaction.sort_runs_by_page) return false;
  if (!view.is_materialized() || view.hole_slots() > 0) return false;
  const uint64_t file_runs = view.CountFileRuns();
  if (file_runs < config_.compaction_min_runs) return false;
  if (static_cast<double>(file_runs) <=
      config_.sort_compaction_file_run_ratio *
          static_cast<double>(view.num_pages())) {
    return false;
  }
  // Sorting only helps when the page SET has consecutive pages sitting in
  // non-adjacent slots; an inherently scattered set (no two consecutive
  // member pages) keeps one VMA per page no matter the order.
  // MinimalFileRuns is the incrementally-maintained run count of the sorted
  // page set, so this whole trigger is O(1) per check (appends probe it on
  // every qualifying page).
  return view.MinimalFileRuns() < file_runs;
}

Status ViewLifecycleManager::CompactView(
    VirtualView* view, std::unique_ptr<VirtualArena>* retired_arena) {
  if (view == nullptr) return InvalidArgument("CompactView needs a view");
  const bool sort_only = view->hole_slots() == 0;
  ViewCompactionStats result;
  const Status st = view->Compact(config_.compaction, &result, retired_arena);
  if (!st.ok()) {
    // The view's mapping state is unspecified now (Compact's error
    // contract); the caller must discard or rebuild it.
    ++stats_.failed_compactions;
    return st;
  }
  ++stats_.compactions;
  ++pool_mutations_;
  if (sort_only) ++stats_.sort_compactions;
  stats_.compaction_mremap_moves += result.mremap_moves;
  stats_.compaction_remap_moves += result.remap_moves;
  stats_.holes_reclaimed += result.holes_reclaimed;
  stats_.slot_runs_collapsed +=
      result.slot_runs_before - result.slot_runs_after;
  return OkStatus();
}

double ViewLifecycleManager::Score(const VirtualView& view, uint64_t now,
                                   uint64_t column_pages) const {
  const uint64_t last = view.usage().last_used_query;
  const double age = now > last ? static_cast<double>(now - last) : 0.0;
  const double half_life =
      config_.recency_half_life > 0 ? config_.recency_half_life : 1.0;
  const double recency = std::exp2(-age / half_life);
  const double pages = static_cast<double>(column_pages > 0 ? column_pages : 1);
  // Floor the cost factor: a view created from a cheap (e.g. covered) scan
  // still carries some recreation cost, and a zero factor would make every
  // other signal irrelevant.
  const double cost = std::max(
      0.0625, static_cast<double>(view.usage().creation_scanned_pages) / pages);
  const double savings =
      view.num_pages() >= column_pages
          ? 0.0
          : static_cast<double>(column_pages - view.num_pages()) / pages;
  const double evidence =
      1.0 + std::log2(1.0 + static_cast<double>(view.usage().hits));
  return recency * cost * savings * evidence;
}

VirtualView* ViewLifecycleManager::PickEvictionVictim(
    const std::vector<std::unique_ptr<VirtualView>>& pool, uint64_t now,
    uint64_t column_pages, TierFilter filter) const {
  VirtualView* victim = nullptr;
  double victim_score = 0;
  for (const auto& view : pool) {
    if (filter == TierFilter::kHotOnly && view->demoted()) continue;
    if (filter == TierFilter::kColdOnly && !view->demoted()) continue;
    const double score = Score(*view, now, column_pages);
    if (victim == nullptr || score < victim_score) {
      victim = view.get();
      victim_score = score;
    }
  }
  return victim;
}

}  // namespace vmsv
