// vmsv::Db — the stable public facade of the engine.
//
// A Db is opened (or created) once and hands back a Table: a batch-first,
// Status-based query surface that hides whether the data lives in one
// AdaptiveColumn or is partitioned across N per-core shards
// (core/shard_router.h). Everything outside src/ — benches, tests, the
// workload runner, embedders — programs against this interface; direct
// AdaptiveColumn construction (core/adaptive_layer.h) is an internal
// implementation detail.
//
//   auto table = *vmsv::Db::Create(std::move(column), {});        // 1 shard
//   auto big   = *vmsv::Db::CreateDurable("/data/t", rows, opts); // N shards
//   auto exec  = table->Execute({lo, hi});
//   auto batch = table->ExecuteBatch(queries);
//
// Sharding contract (details in ARCHITECTURE.md "Sharding & serving"):
// results are bit-identical to the same operations against one unsharded
// AdaptiveColumn over the same rows, for every shard count and partition
// kind — match_count and sum are associative wrap-around uint64 adds
// merged in shard order, and per-shard value zones only ever SKIP shards
// that provably hold no matching value. Updates route to exactly one
// shard; durable tables persist one subdirectory per shard plus a
// table-level descriptor.

#ifndef VMSV_CORE_DB_H_
#define VMSV_CORE_DB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive_layer.h"
#include "exec/affinity.h"
#include "storage/column.h"
#include "storage/types.h"
#include "util/status.h"

namespace vmsv {

/// How a sharded table assigns pages (and with them rows) to shards.
enum class PartitionKind {
  /// Contiguous page blocks: shard i owns a balanced run of consecutive
  /// pages. Preserves range locality per shard.
  kRange,
  /// Round-robin pages: page p lives on shard p % N. Spreads any hot page
  /// region across all shards.
  kHash,
};

const char* PartitionKindName(PartitionKind kind);
/// "range" / "hash" -> kind; anything else falls back to kRange.
PartitionKind PartitionKindFromString(const std::string& name);

/// Health across a whole table: the per-shard snapshots plus their
/// aggregate. Counters sum; degraded flags OR — one degraded shard makes
/// the TABLE report degraded, and the breakdown shows which one.
struct TableHealth {
  /// Counter-summed, flag-OR'ed aggregate of every shard.
  ColumnHealth total;
  /// Per-shard snapshots, shard order. Size 1 for unsharded tables.
  std::vector<ColumnHealth> shards;
  /// Worker-thread pin attempts the affinity layer refused (0 unless core
  /// pinning is enabled; see exec/affinity.h).
  uint64_t pin_failures = 0;
};

struct DbOptions {
  /// Engine configuration applied to EVERY shard's AdaptiveColumn (view
  /// budget, routing mode, lifecycle, durability policy, fault seams).
  /// For durable tables, storage.persist_dir is overridden per shard.
  AdaptiveConfig column;
  /// Number of shards. 1 (the default) wraps a single AdaptiveColumn with
  /// no routing layer at all — the facade costs nothing you don't use.
  uint32_t shards = 1;
  /// Page-to-shard assignment for shards > 1.
  PartitionKind partition = PartitionKind::kRange;
  /// In-memory creation backend (durable tables always use file backing).
  MemoryFileBackend backend = MemoryFileBackend::kMemfd;
  /// Worker threads per shard (>= 1). The shard-per-core default is 1.
  unsigned threads_per_shard = 1;
  /// Core pinning for shard workers: -1 follows VMSV_PIN_CORES (default
  /// off), 0 forces off, 1 forces on. Best-effort — refusals are counted
  /// in TableHealth::pin_failures, never errors.
  int pin_cores = -1;
  /// The sched_setaffinity seam; null means real syscalls. Not owned; must
  /// outlive the table (tests inject a RefusingCpuAffinity here).
  CpuAffinity* affinity = nullptr;
};

/// The public query surface. Thread-safe exactly like AdaptiveColumn:
/// Execute / ExecuteBatch / ExecuteFullScan from any number of threads,
/// concurrently with Update / FlushUpdates from any thread; Checkpoint and
/// Health may run any time.
class Table {
 public:
  virtual ~Table() = default;

  /// Answers one range query adaptively. On a sharded table the query fans
  /// out to the shards whose value zone intersects [q.lo, q.hi] and the
  /// per-shard answers merge in shard order (bit-identical to unsharded).
  /// Error contract: InvalidArgument when q.lo > q.hi.
  virtual StatusOr<QueryExecution> Execute(const RangeQuery& q) = 0;

  /// Answers N in-flight queries with shared scans per shard (the
  /// batch-first path: prefer this whenever queries arrive together).
  /// Result i is bit-identical to Execute(queries[i]).
  virtual StatusOr<BatchExecution> ExecuteBatch(
      const std::vector<RangeQuery>& queries) = 0;

  /// The non-adaptive baseline: scans the base column(s), touching no view
  /// state. Bit-identical to Execute for the same query.
  virtual StatusOr<QueryExecution> ExecuteFullScan(const RangeQuery& q) const = 0;

  /// Point update of one row (global row id). Routes to exactly one shard;
  /// durable shards journal ahead of the cell write.
  /// Error contract: InvalidArgument for an out-of-range row.
  virtual Status Update(uint64_t row, Value new_value) = 0;

  /// Aligns all views with the logged updates, every shard.
  virtual StatusOr<UpdateApplyStats> FlushUpdates() = 0;

  /// Durable tables: checkpoint every shard (flush, data writeback per
  /// policy, manifest snapshot, journal reset). No-op in memory.
  virtual Status Checkpoint() = 0;

  /// Aggregated + per-shard health snapshot (see TableHealth).
  virtual TableHealth Health() const = 0;

  /// Workload counters summed across shards. Zone-pruned shards never ran
  /// a query, so sums reflect work actually done.
  virtual CumulativeStats Metrics() const = 0;

  /// Durability counters summed across shards (zeros for in-memory).
  virtual DurabilityStats Durability() const = 0;

  virtual uint64_t num_rows() const = 0;
  virtual uint64_t num_pages() const = 0;
  virtual uint32_t num_shards() const = 0;
  virtual bool is_durable() const = 0;

  /// \internal White-box access to shard `i`'s engine for tests and
  /// internal tooling. The returned column is owned by the table; pool
  /// introspection on it follows AdaptiveColumn's own locking caveats.
  virtual AdaptiveColumn* shard(uint32_t i) = 0;
  const AdaptiveColumn* shard(uint32_t i) const {
    return const_cast<Table*>(this)->shard(i);
  }
};

class Db {
 public:
  /// Wraps an existing filled column as a 1-shard table (options.shards
  /// must be 1 — a pre-built column has no partition to split; use the
  /// row-generator overload for sharded in-memory tables).
  /// Error contract: InvalidArgument on null column, options.shards != 1,
  /// or config errors from the underlying engine.
  static StatusOr<std::unique_ptr<Table>> Create(
      std::unique_ptr<PhysicalColumn> column, const DbOptions& options);

  /// Creates an in-memory table of `num_rows` rows, filling row r with
  /// value_of(r) — partitioned across options.shards shards. The generator
  /// must be pure (it is re-invoked per shard in page order).
  static StatusOr<std::unique_ptr<Table>> Create(
      uint64_t num_rows, const std::function<Value(uint64_t)>& value_of,
      const DbOptions& options);

  /// Creates a DURABLE table of `num_rows` zeroed rows under `dir`. With
  /// shards > 1 the directory gains a TABLE descriptor (shard count,
  /// partition spec, row count) plus one shard-NNN/ subdirectory per shard,
  /// each a self-contained durable column (journal + manifest + data).
  /// With shards == 1 the layout is exactly a plain durable column — fully
  /// backward compatible with pre-facade directories.
  /// Error contract: FailedPrecondition when `dir` already holds a table;
  /// IoError on filesystem failures.
  static StatusOr<std::unique_ptr<Table>> CreateDurable(
      const std::string& dir, uint64_t num_rows, const DbOptions& options);

  /// Reopens a durable table. The on-disk descriptor decides the shape:
  /// options.shards / options.partition are ignored in favor of what was
  /// created (a directory without a TABLE descriptor opens as a plain
  /// 1-shard column). Recovery runs per shard — journal replay and view
  /// restoration are each shard's own — so a kill between per-shard
  /// checkpoints reopens every shard at its own consistent point.
  /// Error contract: NotFound when `dir` holds no table; IoError on a
  /// corrupt descriptor; FailedPrecondition when any shard is open
  /// elsewhere.
  static StatusOr<std::unique_ptr<Table>> Open(const std::string& dir,
                                               const DbOptions& options);
};

}  // namespace vmsv

#endif  // VMSV_CORE_DB_H_
