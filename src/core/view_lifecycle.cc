#include "core/view_lifecycle.h"

#include <cmath>

#include "util/macros.h"

namespace vmsv {

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kDropNewest: return "drop_newest";
    case EvictionPolicy::kCostAware: return "cost_aware";
  }
  return "unknown";
}

bool ViewLifecycleManager::ShouldCompact(const VirtualView& view) const {
  if (!config_.enable_compaction) return false;
  if (!view.is_materialized() || view.num_pages() == 0) return false;
  const uint64_t runs = view.num_slot_runs();
  if (runs < config_.compaction_min_runs) return false;
  // Holes are what compaction reclaims; a hole-free view is already as
  // virtually dense as it can get (sorting alone is not worth a sweep
  // trigger — CompactView remains callable directly for VMA consolidation).
  if (view.hole_slots() == 0) return false;
  return static_cast<double>(runs) >
         config_.compaction_run_ratio * static_cast<double>(view.num_pages());
}

Status ViewLifecycleManager::CompactView(VirtualView* view) {
  if (view == nullptr) return InvalidArgument("CompactView needs a view");
  ViewCompactionStats result;
  const Status st = view->Compact(config_.compaction, &result);
  if (!st.ok()) {
    // The view's mapping state is unspecified now (Compact's error
    // contract); the caller must discard or rebuild it.
    ++stats_.failed_compactions;
    return st;
  }
  ++stats_.compactions;
  stats_.compaction_mremap_moves += result.mremap_moves;
  stats_.compaction_remap_moves += result.remap_moves;
  stats_.holes_reclaimed += result.holes_reclaimed;
  stats_.slot_runs_collapsed +=
      result.slot_runs_before - result.slot_runs_after;
  return OkStatus();
}

double ViewLifecycleManager::Score(const VirtualView& view, uint64_t now,
                                   uint64_t column_pages) const {
  const uint64_t last = view.usage().last_used_query;
  const double age = now > last ? static_cast<double>(now - last) : 0.0;
  const double half_life =
      config_.recency_half_life > 0 ? config_.recency_half_life : 1.0;
  const double recency = std::exp2(-age / half_life);
  const double pages = static_cast<double>(column_pages > 0 ? column_pages : 1);
  // Floor the cost factor: a view created from a cheap (e.g. covered) scan
  // still carries some recreation cost, and a zero factor would make every
  // other signal irrelevant.
  const double cost = std::max(
      0.0625, static_cast<double>(view.usage().creation_scanned_pages) / pages);
  const double savings =
      view.num_pages() >= column_pages
          ? 0.0
          : static_cast<double>(column_pages - view.num_pages()) / pages;
  const double evidence =
      1.0 + std::log2(1.0 + static_cast<double>(view.usage().hits));
  return recency * cost * savings * evidence;
}

VirtualView* ViewLifecycleManager::PickEvictionVictim(
    const std::vector<std::unique_ptr<VirtualView>>& pool, uint64_t now,
    uint64_t column_pages) const {
  VirtualView* victim = nullptr;
  double victim_score = 0;
  for (const auto& view : pool) {
    const double score = Score(*view, now, column_pages);
    if (victim == nullptr || score < victim_score) {
      victim = view.get();
      victim_score = score;
    }
  }
  return victim;
}

}  // namespace vmsv
