// Environment-variable parsing and vm.max_map_count handling.
//
// The benchmarks are configured exclusively through VMSV_* environment
// variables so the same binaries serve both the ctest smoke tier
// (VMSV_PAGES=256) and paper-scale runs (VMSV_PAGES=1048576).

#ifndef VMSV_UTIL_ENV_H_
#define VMSV_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace vmsv {

/// Returns the environment variable `name` parsed as uint64, or
/// `default_value` when unset, empty, or unparsable. Accepts optional
/// k/m/g suffixes (binary: 1k = 1024).
uint64_t GetEnvUint64(const char* name, uint64_t default_value);

/// Returns the environment variable `name`, or `default_value` when unset.
std::string GetEnvString(const char* name, const std::string& default_value);

/// Returns the environment variable parsed as double, or `default_value`.
double GetEnvDouble(const char* name, double default_value);

/// Parses a uint64 with optional k/m/g suffix. Returns false on garbage.
/// Exposed for unit testing.
bool ParseUint64(const std::string& text, uint64_t* out);

/// Reads vm.max_map_count, attempts to raise it to `target` (requires
/// privilege; failure is not an error), and returns the value in effect
/// afterwards. The paper raises it to 2^32-1 for the 1M-page experiments.
uint64_t TryRaiseMaxMapCount(uint64_t target);

/// Reads the current vm.max_map_count, or `fallback` if /proc is unreadable.
uint64_t ReadMaxMapCount(uint64_t fallback);

}  // namespace vmsv

#endif  // VMSV_UTIL_ENV_H_
