// Micro-benchmarks of the scan kernels and index lookup paths (extension
// E9), plus the repo's perf-baseline harness:
//
//   micro_scan --sweep   runs {every available kernel} x {1, 2, 4, 8}
//                        threads full-column scans and writes BENCH_scan.json
//                        (per-configuration throughput in pages/s and GB/s,
//                        per-rep timings, medians) — the machine-readable
//                        perf trajectory later PRs regress against. The
//                        sweep verifies every configuration returns
//                        bit-identical match_count/sum before reporting.
//
// Without --sweep it is the usual Google-Benchmark binary; per-kernel scan
// benchmarks are registered for each kernel available on the machine.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "vmsv.h"
#include "exec/parallel_scanner.h"
#include "exec/scan_kernels.h"
#include "index/bitmap_index.h"
#include "index/page_id_vector_index.h"
#include "index/physical_copy_index.h"
#include "index/virtual_view_index.h"
#include "index/zone_map_index.h"
#include "rewiring/maps_parser.h"
#include "util/histogram.h"
#include "util/macros.h"
#include "util/stopwatch.h"
#include "workload/distribution.h"

namespace vmsv {
namespace {

constexpr Value kMaxValue = 100'000'000;

std::unique_ptr<PhysicalColumn> MakeBenchColumn(uint64_t pages) {
  DistributionSpec spec;
  spec.kind = DataDistribution::kUniform;
  spec.max_value = kMaxValue;
  spec.seed = 42;  // the golden seed the ctest suites pin
  auto column = MakeColumn(spec, pages * kValuesPerPage);
  VMSV_CHECK_OK(column.status());
  return std::move(column).ValueOrDie();
}

// ---------------------------------------------------------------------------
// Perf-baseline sweep (BENCH_scan.json)

struct SweepConfig {
  ScanKernel kernel;
  unsigned threads;
  std::vector<double> rep_ms;
  double median_ms = 0;
  double pages_per_s = 0;
  double gb_per_s = 0;
  // dTLB counters over all timed reps (false => the null fields in JSON).
  bool dtlb_available = false;
  uint64_t dtlb_load_misses = 0;
  uint64_t dtlb_loads = 0;
  uint64_t cycles = 0;
  double dtlb_miss_per_1k_loads = 0;
};

int SweepMain() {
  const bench::BenchEnv env = bench::LoadBenchEnv(
      "micro_scan --sweep: kernel x thread scan baseline", 65536);
  const std::string json_path = bench::BenchJsonPath("BENCH_scan.json");
  auto column = MakeBenchColumn(env.pages);
  const Value* base =
      reinterpret_cast<const Value*>(column->base_arena().data());
  const RangeQuery q{0, kMaxValue / 2};

  // Huge-page coverage of the base arena, from the kernel's own accounting
  // (smaps), so the dTLB numbers below are attributable to a layout. Both
  // are 0 in the 4 KiB fallback — that IS the measurement, not a failure.
  const VirtualArena& arena = column->base_arena();
  uint64_t smaps_huge_bytes = 0;
  if (auto smaps = ParseSelfSmaps(); smaps.ok()) {
    smaps_huge_bytes = ArenaHugeBackedBytes(*smaps, arena);
  }
  const double column_bytes = static_cast<double>(env.pages) * kPageSize;
  const double huge_coverage = smaps_huge_bytes / column_bytes;
  std::fprintf(stdout,
               "# huge pages: backing=%s units=%llu coverage=%.1f%% "
               "(smaps: %llu bytes PMD-backed)\n",
               HugeBackingName(column->file()->huge_backing()),
               static_cast<unsigned long long>(arena.huge_unit_count()),
               100.0 * huge_coverage,
               static_cast<unsigned long long>(smaps_huge_bytes));

  std::vector<ScanKernel> kernels;
  for (ScanKernel k :
       {ScanKernel::kScalar, ScanKernel::kAvx2, ScanKernel::kAvx512}) {
    if (ScanKernelAvailable(k)) kernels.push_back(k);
  }
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

  // Reference result from the scalar serial pass; every configuration must
  // reproduce it bit-identically or the sweep aborts.
  const PageScanResult ref =
      ScanPageScalar(base, env.pages * kValuesPerPage, q);

  const ScanKernel restore = ActiveScanKernel();
  // One counter group reused across configurations: the main thread issues
  // every load in the serial path and shares the work in the sharded one,
  // so its dTLB rate is comparable across configs (absolute counts are not,
  // with threads > 1 — the rate field is the one to compare).
  bench::TlbCounters tlb;
  std::vector<SweepConfig> configs;
  for (const ScanKernel kernel : kernels) {
    VMSV_BENCH_CHECK_OK(SetActiveScanKernel(kernel));
    for (const unsigned threads : thread_counts) {
      SweepConfig cfg;
      cfg.kernel = kernel;
      cfg.threads = threads;
      ParallelScanOptions options;
      options.threads = threads;
      options.serial_cutoff = 0;  // measure the sharded path even at smoke scale
      const ParallelScanner scanner(options);
      // Warm-up: touches every page (and spins up pool workers) untimed.
      PageScanResult r = scanner.ScanPages(base, env.pages, q);
      SampleStats times;
      tlb.Start();
      for (uint64_t rep = 0; rep < env.reps; ++rep) {
        Stopwatch timer;
        r = scanner.ScanPages(base, env.pages, q);
        const double ms = timer.ElapsedMillis();
        times.Add(ms);
        cfg.rep_ms.push_back(ms);
      }
      tlb.Stop();
      cfg.dtlb_available = tlb.available();
      cfg.dtlb_load_misses = tlb.dtlb_load_misses();
      cfg.dtlb_loads = tlb.dtlb_loads();
      cfg.cycles = tlb.cycles();
      cfg.dtlb_miss_per_1k_loads = tlb.dtlb_miss_per_1k_loads();
      if (r.match_count != ref.match_count || r.sum != ref.sum) {
        std::fprintf(stderr,
                     "[bench] RESULT MISMATCH kernel=%s threads=%u vs scalar "
                     "serial reference\n",
                     ScanKernelName(kernel), threads);
        return 1;
      }
      cfg.median_ms = times.Median();
      cfg.pages_per_s =
          static_cast<double>(env.pages) / (cfg.median_ms / 1000.0);
      cfg.gb_per_s = static_cast<double>(env.pages) * 4096.0 / 1e9 /
                     (cfg.median_ms / 1000.0);
      std::fprintf(stdout,
                   "kernel=%-6s threads=%u  median=%9.3f ms  %12.0f pages/s  "
                   "%6.2f GB/s\n",
                   ScanKernelName(kernel), threads, cfg.median_ms,
                   cfg.pages_per_s, cfg.gb_per_s);
      configs.push_back(std::move(cfg));
    }
  }
  VMSV_BENCH_CHECK_OK(SetActiveScanKernel(restore));

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", json_path.c_str());
    return 1;
  }
  {
    bench::JsonWriter w(out);
    w.BeginObject();
    bench::WriteBenchJsonCommon(&w, "micro_scan", env, /*seed=*/42);
    w.Field("query_selectivity", 0.5, 1);
    w.Field("distribution", "uniform");
    w.Field("huge_backing", HugeBackingName(column->file()->huge_backing()));
    w.Field("huge_units", arena.huge_unit_count());
    w.Field("huge_backed_bytes", smaps_huge_bytes);
    w.Field("huge_coverage", huge_coverage, 4);
    w.FieldBool("dtlb_available", tlb.available());
    w.Key("configs");
    w.BeginArray();
    for (const SweepConfig& cfg : configs) {
      w.BeginObject();
      w.Field("kernel", ScanKernelName(cfg.kernel));
      w.Field("threads", cfg.threads);
      w.Field("median_ms", cfg.median_ms);
      w.Field("pages_per_s", cfg.pages_per_s, 1);
      w.Field("gb_per_s", cfg.gb_per_s, 4);
      w.FieldArray("rep_ms", cfg.rep_ms);
      if (cfg.dtlb_available) {
        w.Field("dtlb_load_misses", cfg.dtlb_load_misses);
        w.Field("dtlb_loads", cfg.dtlb_loads);
        w.Field("cycles", cfg.cycles);
        w.Field("dtlb_miss_per_1k_loads", cfg.dtlb_miss_per_1k_loads, 4);
      } else {
        w.Key("dtlb_load_misses");
        w.Null();
        w.Key("dtlb_loads");
        w.Null();
        w.Key("cycles");
        w.Null();
        w.Key("dtlb_miss_per_1k_loads");
        w.Null();
      }
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::fputc('\n', out);
  }
  std::fclose(out);
  std::fprintf(stdout, "# wrote %s (%zu configurations)\n", json_path.c_str(),
               configs.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Google-Benchmark microbenchmarks

constexpr uint64_t kBenchPages = 4096;  // 16 MB column

void BM_ScanPageKernel(benchmark::State& state) {
  const auto kernel = static_cast<ScanKernel>(state.range(0));
  const ScanKernelOps* ops = GetScanKernelOps(kernel);
  if (ops == nullptr) {
    state.SkipWithError("kernel unavailable on this machine/build");
    return;
  }
  auto column = MakeBenchColumn(kBenchPages);
  const RangeQuery q{0, kMaxValue / 2};
  uint64_t page = 0;
  for (auto _ : state) {
    const PageScanResult r =
        ops->scan_page(column->PageData(page), kValuesPerPage, q);
    benchmark::DoNotOptimize(r.sum);
    page = (page + 1) % kBenchPages;
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
  state.SetLabel(ScanKernelName(kernel));
}
BENCHMARK(BM_ScanPageKernel)
    ->Arg(static_cast<int>(ScanKernel::kScalar))
    ->Arg(static_cast<int>(ScanKernel::kAvx2))
    ->Arg(static_cast<int>(ScanKernel::kAvx512));

void BM_PageContainsAnyKernel(benchmark::State& state) {
  const auto kernel = static_cast<ScanKernel>(state.range(0));
  const ScanKernelOps* ops = GetScanKernelOps(kernel);
  if (ops == nullptr) {
    state.SkipWithError("kernel unavailable on this machine/build");
    return;
  }
  auto column = MakeBenchColumn(kBenchPages);
  // A narrow range above the domain: every page needs the full (blocked)
  // inspection before reporting no — the worst case the block accumulator
  // is built for.
  const RangeQuery q{kMaxValue + 1, kMaxValue + 2};
  uint64_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops->page_contains_any(column->PageData(page), kValuesPerPage, q));
    page = (page + 1) % kBenchPages;
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
  state.SetLabel(ScanKernelName(kernel));
}
BENCHMARK(BM_PageContainsAnyKernel)
    ->Arg(static_cast<int>(ScanKernel::kScalar))
    ->Arg(static_cast<int>(ScanKernel::kAvx2))
    ->Arg(static_cast<int>(ScanKernel::kAvx512));

void BM_ComputePageZoneKernel(benchmark::State& state) {
  const auto kernel = static_cast<ScanKernel>(state.range(0));
  const ScanKernelOps* ops = GetScanKernelOps(kernel);
  if (ops == nullptr) {
    state.SkipWithError("kernel unavailable on this machine/build");
    return;
  }
  auto column = MakeBenchColumn(kBenchPages);
  uint64_t page = 0;
  for (auto _ : state) {
    const PageZone zone =
        ops->compute_page_zone(column->PageData(page), kValuesPerPage);
    benchmark::DoNotOptimize(zone.min);
    page = (page + 1) % kBenchPages;
  }
  state.SetBytesProcessed(state.iterations() * kPageSize);
  state.SetLabel(ScanKernelName(kernel));
}
BENCHMARK(BM_ComputePageZoneKernel)
    ->Arg(static_cast<int>(ScanKernel::kScalar))
    ->Arg(static_cast<int>(ScanKernel::kAvx2))
    ->Arg(static_cast<int>(ScanKernel::kAvx512));

void BM_FullViewScanThreads(benchmark::State& state) {
  auto column = MakeBenchColumn(kBenchPages);
  const Value* base =
      reinterpret_cast<const Value*>(column->base_arena().data());
  ParallelScanOptions options;
  options.threads = static_cast<unsigned>(state.range(0));
  options.serial_cutoff = 0;
  const ParallelScanner scanner(options);
  const RangeQuery q{0, 50'000};
  for (auto _ : state) {
    const PageScanResult r = scanner.ScanPages(base, kBenchPages, q);
    benchmark::DoNotOptimize(r.sum);
  }
  state.SetBytesProcessed(state.iterations() * kBenchPages * kPageSize);
}
BENCHMARK(BM_FullViewScanThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

template <typename Index>
void BM_IndexLookup(benchmark::State& state) {
  auto column = MakeBenchColumn(kBenchPages);
  Index index;
  VMSV_CHECK_OK(index.Build(*column, 0, 100'000));  // ~40% of pages qualify
  const RangeQuery q{0, 50'000};
  for (auto _ : state) {
    const IndexQueryResult r = index.Query(*column, q);
    benchmark::DoNotOptimize(r.sum);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(index.name());
}
BENCHMARK_TEMPLATE(BM_IndexLookup, ZoneMapIndex);
BENCHMARK_TEMPLATE(BM_IndexLookup, BitmapIndex);
BENCHMARK_TEMPLATE(BM_IndexLookup, PageIdVectorIndex);
BENCHMARK_TEMPLATE(BM_IndexLookup, PhysicalCopyIndex);
BENCHMARK_TEMPLATE(BM_IndexLookup, VirtualViewIndex);

void BM_AdaptiveSteadyState(benchmark::State& state) {
  // Cost of a query answered from an established partial view, including
  // the (discarded) candidate bookkeeping of Listing 1.
  DistributionSpec spec;
  spec.kind = DataDistribution::kSine;
  spec.max_value = kMaxValue;
  auto column = MakeColumn(spec, kBenchPages * kValuesPerPage);
  VMSV_CHECK(column.ok());
  auto adaptive_r = Db::Create(std::move(column).ValueOrDie(), {});
  VMSV_CHECK(adaptive_r.ok());
  auto& adaptive = *adaptive_r;
  const RangeQuery q{10'000'000, 11'000'000};
  VMSV_CHECK(adaptive->Execute(q).ok());  // warm-up creates the view
  for (auto _ : state) {
    auto result = adaptive->Execute(q);
    VMSV_CHECK(result.ok());
    benchmark::DoNotOptimize(result->sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveSteadyState);

}  // namespace
}  // namespace vmsv

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep") == 0) {
      return vmsv::SweepMain();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
