#include "rewiring/hugepage.h"

#include <cstdio>
#include <cstring>

#include "util/env.h"

namespace vmsv {

bool HugePagesDisabledByEnv() {
  return GetEnvUint64("VMSV_NO_HUGEPAGES", 0) != 0;
}

bool HugetlbRequestedByEnv() {
  return GetEnvUint64("VMSV_HUGETLB", 0) != 0;
}

bool ThpShmemEligible() {
#if defined(__linux__)
  std::FILE* f =
      std::fopen("/sys/kernel/mm/transparent_hugepage/shmem_enabled", "r");
  if (f == nullptr) return false;
  char buf[256];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  // The active mode is bracketed, e.g. "always within_size [advise] never".
  const char* active = std::strchr(buf, '[');
  if (active == nullptr) return false;
  return std::strncmp(active, "[never]", 7) != 0 &&
         std::strncmp(active, "[deny]", 6) != 0;
#else
  return false;
#endif
}

}  // namespace vmsv
