// Figure 3 (paper §3.1): query performance of explicit vs virtual partial
// views.
//
// Setup: a column of uniformly random 8B integers in [0, 100M]. For each
// index selectivity k (the fraction of qualifying pages grows with k), each
// variant builds a partial index over [0, k], 10k uniformly selected entries
// are updated, and the query [0, k/2] (50% of the indexed data) is answered.
//
// Paper shape: Zone Map slowest (metadata of ALL pages inspected), Bitmap
// and Vector of Page-IDs in between, Virtual View fastest and closest to the
// artificial Physical Scan optimum.

#include <memory>
#include <vector>

#include "bench_common.h"
#include "index/bitmap_index.h"
#include "index/page_id_vector_index.h"
#include "index/physical_copy_index.h"
#include "index/virtual_view_index.h"
#include "index/zone_map_index.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/distribution.h"

namespace vmsv {
namespace {

constexpr Value kMaxValue = 100'000'000;

struct VariantRun {
  std::unique_ptr<PartialIndex> index;
  double med_ms = 0;
  double avg_ms = 0;
  IndexQueryResult last_result;
};

int Main() {
  const bench::BenchEnv env =
      bench::LoadBenchEnv("Figure 3: explicit vs virtual partial views", 65536);
  // Updates scale with column size (paper: 10k updates on 1M pages).
  const uint64_t num_updates =
      GetEnvUint64("VMSV_UPDATES", std::max<uint64_t>(64, 10000 * env.pages / 1048576));

  DistributionSpec spec;
  spec.kind = DataDistribution::kUniform;
  spec.max_value = kMaxValue;
  spec.seed = 42;
  auto column_r = MakeColumn(spec, env.pages * kValuesPerPage, env.backend);
  VMSV_BENCH_CHECK_OK(column_r.status());
  auto column = std::move(column_r).ValueOrDie();

  // The paper's k values: 1250 (0.65% of pages qualify) ... 80000 (33.55%).
  const std::vector<uint64_t> ks = {1250, 2500, 5000, 10000, 20000, 40000, 80000};

  // The pre-existing *_ms columns keep their mean semantics so the perf
  // trajectory stays comparable across PRs; *_median_ms are the new,
  // outlier-robust primaries.
  TablePrinter table(bench::WithScanConfigHeaders(
      {"k", "sel_pages_pct", "zone_map_ms", "bitmap_ms", "vector_ms",
       "physical_scan_ms", "virtual_view_ms", "zone_map_median_ms",
       "bitmap_median_ms", "vector_median_ms", "physical_scan_median_ms",
       "virtual_view_median_ms"}));

  for (const uint64_t k : ks) {
    std::vector<VariantRun> variants;
    variants.push_back({std::make_unique<ZoneMapIndex>(), 0, 0, {}});
    variants.push_back({std::make_unique<BitmapIndex>(), 0, 0, {}});
    variants.push_back({std::make_unique<PageIdVectorIndex>(), 0, 0, {}});
    variants.push_back({std::make_unique<PhysicalCopyIndex>(), 0, 0, {}});
    variants.push_back({std::make_unique<VirtualViewIndex>(), 0, 0, {}});

    for (VariantRun& run : variants) {
      VMSV_BENCH_CHECK_OK(run.index->Build(*column, 0, k));
    }

    // 10k (scaled) scattered updates: all variants share the same column
    // state, so each update is applied to the column once and mirrored into
    // every index.
    Rng rng(k);
    for (uint64_t u = 0; u < num_updates; ++u) {
      const uint64_t row = rng.Below(column->num_rows());
      const Value new_value = rng.Below(kMaxValue + 1);
      const Value old_value = column->Set(row, new_value);
      for (VariantRun& run : variants) {
        VMSV_BENCH_CHECK_OK(
            run.index->ApplyUpdate(*column, RowUpdate{row, old_value, new_value}));
      }
    }

    const RangeQuery query{0, k / 2};
    double sel_pct = 0;
    for (VariantRun& run : variants) {
      SampleStats times;
      // Untimed warm-up: populates page-table entries of freshly rewired
      // views (the paper's "first access after (re-)mapping" cost) so all
      // variants are measured steady-state.
      run.last_result = run.index->Query(*column, query);
      for (uint64_t rep = 0; rep < env.reps; ++rep) {
        Stopwatch timer;
        run.last_result = run.index->Query(*column, query);
        times.Add(timer.ElapsedMillis());
      }
      run.med_ms = times.Median();
      run.avg_ms = times.Mean();
    }
    sel_pct = 100.0 * static_cast<double>(variants[4].index->num_indexed_pages()) /
              static_cast<double>(column->num_pages());

    // Cross-variant result validation: all five must agree.
    for (const VariantRun& run : variants) {
      if (run.last_result.match_count != variants[0].last_result.match_count ||
          run.last_result.sum != variants[0].last_result.sum) {
        std::fprintf(stderr, "[bench] RESULT MISMATCH between %s and %s at k=%llu\n",
                     run.index->name(), variants[0].index->name(),
                     static_cast<unsigned long long>(k));
        return 1;
      }
    }

    table.AddRow(bench::WithScanConfigCells(
        {TablePrinter::Fmt(k), TablePrinter::Fmt(sel_pct, 2),
         TablePrinter::Fmt(variants[0].avg_ms, 3),
         TablePrinter::Fmt(variants[1].avg_ms, 3),
         TablePrinter::Fmt(variants[2].avg_ms, 3),
         TablePrinter::Fmt(variants[3].avg_ms, 3),
         TablePrinter::Fmt(variants[4].avg_ms, 3),
         TablePrinter::Fmt(variants[0].med_ms, 3),
         TablePrinter::Fmt(variants[1].med_ms, 3),
         TablePrinter::Fmt(variants[2].med_ms, 3),
         TablePrinter::Fmt(variants[3].med_ms, 3),
         TablePrinter::Fmt(variants[4].med_ms, 3)},
        env));
  }

  table.PrintTable();
  std::fprintf(stdout, "\n# csv\n");
  table.PrintCsv();
  return 0;
}

}  // namespace
}  // namespace vmsv

int main() { return vmsv::Main(); }
