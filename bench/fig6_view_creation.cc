// Figure 6 (paper §3.3): impact of the two creation optimizations on the
// time to build a single partial view.
//
// (a) Uniform distribution over [0, 100M], view v[0, 100k] (~40% of pages
//     qualify, scattered).
// (b) Sine distribution over [0, 2^64-1], view v[0, 2^63] (~52% of pages
//     qualify, clustered).
//
// Four configurations: no optimizations, consecutive mapping only,
// concurrent (background) mapping only, both.
//
// Paper shape: both optimizations help; coalescing pays off most under
// clustering (sine), concurrent mapping is distribution-independent. NOTE:
// on a single-vCPU container the concurrent optimization has little room to
// overlap — EXPERIMENTS.md discusses this.

#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_layer.h"
#include "util/histogram.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"
#include "workload/distribution.h"

namespace vmsv {
namespace {

struct Scenario {
  const char* label;
  DistributionSpec spec;
  Value view_lo;
  Value view_hi;
};

struct CreationConfig {
  const char* label;
  ViewCreationOptions options;
};

int Main() {
  const bench::BenchEnv env = bench::LoadBenchEnv(
      "Figure 6: impact of optimizations on view creation", 65536);

  const std::vector<Scenario> scenarios = {
      {"uniform v[0,100k] of [0,100M]",
       DistributionSpec{DataDistribution::kUniform, 100'000'000, 42, 100.0, 0.10},
       0, 100'000},
      {"sine v[0,2^63] of [0,2^64-1]",
       DistributionSpec{DataDistribution::kSine, ~Value{0}, 42, 100.0, 0.10}, 0,
       Value{1} << 63},
  };
  const std::vector<CreationConfig> configs = {
      {"no optimizations", {/*coalesce_runs=*/false, /*background_mapping=*/false}},
      {"consecutively mapped", {true, false}},
      {"concurrently mapped", {false, true}},
      {"both optimizations", {true, true}},
  };

  TablePrinter table(bench::WithScanConfigHeaders(
      {"distribution", "config", "create_ms", "create_median_ms",
       "view_pages", "mmap_calls"}));
  for (const Scenario& scenario : scenarios) {
    auto column_r =
        MakeColumn(scenario.spec, env.pages * kValuesPerPage, env.backend);
    VMSV_BENCH_CHECK_OK(column_r.status());
    auto column = std::move(column_r).ValueOrDie();

    for (const CreationConfig& cfg : configs) {
      SampleStats times;
      uint64_t view_pages = 0;
      uint64_t map_calls = 0;
      for (uint64_t rep = 0; rep < env.reps; ++rep) {
        std::unique_ptr<BackgroundMapper> mapper;
        if (cfg.options.background_mapping) {
          mapper = std::make_unique<BackgroundMapper>();
        }
        Stopwatch timer;
        auto view_r = BuildViewByScan(*column, scenario.view_lo, scenario.view_hi,
                                      cfg.options, mapper.get());
        VMSV_BENCH_CHECK_OK(view_r.status());
        times.Add(timer.ElapsedMillis());
        view_pages = (*view_r)->num_pages();
        map_calls = (*view_r)->arena().map_call_count();
      }
      // create_ms keeps its mean semantics (trajectory continuity);
      // create_median_ms is the outlier-robust primary (reps are few and
      // mmap-heavy runs have outliers).
      table.AddRow(bench::WithScanConfigCells(
          {scenario.label, cfg.label, TablePrinter::Fmt(times.Mean(), 2),
           TablePrinter::Fmt(times.Median(), 2), TablePrinter::Fmt(view_pages),
           TablePrinter::Fmt(map_calls)},
          env));
    }
  }
  table.PrintTable();
  std::fprintf(stdout, "\n# csv\n");
  table.PrintCsv();
  return 0;
}

}  // namespace
}  // namespace vmsv

int main() { return vmsv::Main(); }
