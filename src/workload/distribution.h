// Synthetic data distributions (paper Figure 2): uniform for the index
// comparison, plus the three clustered layouts — linear, sine, sparse —
// whose page-level value locality is what makes partial views small.
//
// All generators are pure functions of (spec, row): filling a column twice
// or regenerating a single row yields identical values, which the golden
// distribution tests pin at seed 42.

#ifndef VMSV_WORKLOAD_DISTRIBUTION_H_
#define VMSV_WORKLOAD_DISTRIBUTION_H_

#include <cstdint>
#include <memory>

#include "storage/column.h"
#include "storage/types.h"
#include "util/status.h"

namespace vmsv {

enum class DataDistribution {
  kUniform,  // iid uniform over [0, max_value]
  kLinear,   // value grows linearly with the row position, plus jitter
  kSine,     // value follows a sine wave over the row position, plus jitter
  kSparse,   // most pages sit in a narrow low band; few pages spike
};

const char* DistributionName(DataDistribution kind);

struct DistributionSpec {
  DataDistribution kind = DataDistribution::kUniform;
  /// Inclusive upper bound of the value domain.
  Value max_value = 100'000'000;
  uint64_t seed = 42;
  /// Sine wavelength measured in storage pages. Page-count-relative (not
  /// column-relative) so the page-level clustering that makes views small is
  /// preserved at every scale, from 256-page smoke runs to 1M-page paper
  /// runs. Figure 2 plots 300 pages = three full periods at the default.
  double period_pages = 100.0;
  /// Linear/sine: jitter amplitude as a fraction of max_value (centered).
  /// Sparse: fraction of pages that are spikes.
  double noise = 0.10;
};

/// Stateless row→value function for one spec.
class ValueGenerator {
 public:
  ValueGenerator(const DistributionSpec& spec, uint64_t num_rows);

  Value operator()(uint64_t row) const;

 private:
  DistributionSpec spec_;
  uint64_t num_rows_;
  double value_scale_;  // max_value as double (for the trig paths)
};

/// Fills an EXISTING column with the spec's values — the load phase for
/// columns whose backing the caller created (e.g. the durable file-backed
/// path, where AdaptiveColumn::CreateDurable owns file creation).
void FillColumn(const DistributionSpec& spec, PhysicalColumn* column);

/// Creates a PhysicalColumn of `num_rows` values drawn from `spec`.
StatusOr<std::unique_ptr<PhysicalColumn>> MakeColumn(
    const DistributionSpec& spec, uint64_t num_rows,
    MemoryFileBackend backend = MemoryFileBackend::kMemfd);

}  // namespace vmsv

#endif  // VMSV_WORKLOAD_DISTRIBUTION_H_
