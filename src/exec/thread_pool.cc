#include "exec/thread_pool.h"

#include "util/env.h"

namespace vmsv {

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads may outlive static destruction order.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(unsigned n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::ClaimTask(uint64_t generation, uint64_t* task) {
  // Claims go through mu_ so a straggler from a FINISHED job (one that is
  // between tasks when the job completes) can never claim a task of the
  // next job while holding the previous job's dangling fn pointer: its
  // stale generation fails the check before any index is consumed. Claim
  // frequency is one per shard, so the lock is noise next to shard work.
  std::lock_guard<std::mutex> lock(mu_);
  if (!job_open_ || job_generation_ != generation ||
      next_task_ >= job_tasks_) {
    return false;
  }
  *task = next_task_++;
  return true;
}

void ThreadPool::FinishTask(uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (job_generation_ != generation) return;  // cannot happen; be safe
  if (++completed_ == job_tasks_) done_cv_.notify_all();
}

void ThreadPool::Run(uint64_t n_tasks, unsigned parallelism,
                     const std::function<void(uint64_t)>& fn) {
  if (n_tasks == 0) return;
  if (parallelism <= 1 || n_tasks == 1) {
    for (uint64_t t = 0; t < n_tasks; ++t) fn(t);
    return;
  }
  EnsureWorkers(parallelism - 1);
  std::unique_lock<std::mutex> job_lock(job_mu_);  // one job at a time
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_tasks_ = n_tasks;
    next_task_ = 0;
    completed_ = 0;
    generation = ++job_generation_;
    job_open_ = true;
  }
  work_cv_.notify_all();
  // The caller works too; pool workers race it for the remaining tasks.
  uint64_t t;
  while (ClaimTask(generation, &t)) {
    fn(t);
    FinishTask(generation);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this, n_tasks] { return completed_ == n_tasks; });
    job_open_ = false;
    job_fn_ = nullptr;
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this, seen_generation] {
      return stopping_ || (job_open_ && job_generation_ != seen_generation);
    });
    if (stopping_) return;
    seen_generation = job_generation_;
    const std::function<void(uint64_t)>* fn = job_fn_;
    lock.unlock();
    uint64_t t;
    while (ClaimTask(seen_generation, &t)) {
      (*fn)(t);
      FinishTask(seen_generation);
    }
    lock.lock();
  }
}

unsigned DefaultScanThreads() {
  static const unsigned cached = [] {
    const uint64_t from_env = GetEnvUint64("VMSV_THREADS", 0);
    if (from_env > 0) return static_cast<unsigned>(from_env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1u;
  }();
  return cached;
}

}  // namespace vmsv
