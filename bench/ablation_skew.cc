// Ablation (extension): adaptive benefit as a function of query-position
// skew. Analysts rarely probe the value domain uniformly; under Zipfian
// positions the same few ranges recur, partial views amortize much faster,
// and the view limit matters less.
//
// Reported per skew level: accumulated adaptive vs full-scan time, pages
// saved, and the number of views the column settled on.

#include "bench_common.h"
#include "vmsv.h"
#include "util/table_printer.h"
#include "workload/distribution.h"
#include "workload/query_generator.h"
#include "workload/runner.h"

namespace vmsv {
namespace {

constexpr Value kMaxValue = 100'000'000;

int Main() {
  const bench::BenchEnv env =
      bench::LoadBenchEnv("Ablation: query-position skew (Zipfian)", 8192);

  TablePrinter table(bench::WithScanConfigHeaders(
      {"skew", "adaptive_ms", "fullscan_ms", "speedup_x", "pages_saved_pct",
       "final_views"}));
  for (const double skew : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    DistributionSpec spec;
    spec.kind = DataDistribution::kSine;
    spec.max_value = kMaxValue;
    spec.seed = 42;
    auto column_r = MakeColumn(spec, env.pages * kValuesPerPage, env.backend);
    VMSV_BENCH_CHECK_OK(column_r.status());
    AdaptiveConfig config;
    config.max_views = 50;
    auto adaptive_r =
        Db::Create(std::move(column_r).ValueOrDie(), DbOptions{config});
    VMSV_BENCH_CHECK_OK(adaptive_r.status());
    auto adaptive = std::move(adaptive_r).ValueOrDie();

    QueryWorkloadSpec wspec;
    wspec.num_queries = env.queries;
    wspec.domain_hi = kMaxValue;
    wspec.seed = 13;
    const auto queries = MakeZipfianWorkload(wspec, 0.02, skew);

    RunnerOptions options;
    options.run_baseline = true;
    options.verify_results = true;
    auto report_r = RunWorkload(adaptive.get(), queries, options);
    VMSV_BENCH_CHECK_OK(report_r.status());

    const CumulativeStats m = adaptive->Metrics();
    table.AddRow(bench::WithScanConfigCells(
        {TablePrinter::Fmt(skew, 1),
         TablePrinter::Fmt(report_r->adaptive_total_ms, 1),
         TablePrinter::Fmt(report_r->fullscan_total_ms, 1),
         TablePrinter::Fmt(
             report_r->fullscan_total_ms / report_r->adaptive_total_ms, 2),
         TablePrinter::Fmt(100.0 * m.PagesSavedRatio(), 1),
         TablePrinter::Fmt(static_cast<uint64_t>(
             adaptive->shard(0)->view_index().num_partial_views()))},
        env));
  }
  table.PrintTable();
  std::fprintf(stdout, "\n# csv\n");
  table.PrintCsv();
  return 0;
}

}  // namespace
}  // namespace vmsv

int main() { return vmsv::Main(); }
