// ViewManifest — the durable record that makes partial views
// RECONSTRUCTIBLE state (paper §2.5 argues views can be recovered rather
// than owned; the durable backend takes that to its conclusion: a restart
// rebuilds every view from this record without rescanning the column).
//
// The manifest is INCREMENTAL: a base snapshot (atomically replaced, whole
// file) plus an append-only delta log (MANIFEST.delta) of per-view
// upsert/remove records. Adaptation decisions that change one pool member
// append one or two delta records — O(view) bytes — instead of rewriting
// the whole file; checkpoints compact: they write a fresh base snapshot
// (bumping its EPOCH) and reset the delta log. Recovery reads the base,
// then applies, in order, every delta stamped with the base's epoch;
// deltas from another epoch are ignored (they describe a snapshot that was
// superseded — or one whose rename never became durable — and views are
// reconstructible, so dropping them only costs re-adaptation).
//
// Base snapshot on-disk format (little-endian):
//   u8[8]  magic "VMSVMAN1"
//   u32    version (3)
//   u32    reserved (0)
//   u64    num_rows | u64 num_pages | u64 pool_generation |
//   u64    epoch | u64 next_view_id | u64 view_count
//   per view: u64 id | u64 lo | u64 hi | u64 creation_scanned_pages |
//             u64 flags (bit 0 = demoted) |
//             u64 page_count | page_count * u64 page ids (slot order)
//   u32    crc32 over everything before it
//
// Demoted (cold-tier) views persist with an EMPTY page list in the base
// snapshot: their membership lives in the per-view cold spill file
// (storage/cold_tier.h), which the snapshot protocol re-spills first. The
// flag tells recovery to read the cold file instead of treating the empty
// list as an empty view.
//
// Base writes go to MANIFEST.tmp, are fsynced, renamed over MANIFEST, and
// the directory is fsynced: a crash leaves either the old or the new
// snapshot, never a torn one.
//
// Delta log on-disk format (little-endian):
//   u8[8]  magic "VMSVMDL1"
//   per record:
//     u32 op (1 = upsert, 2 = remove, 3 = set-tier) | u32 reserved |
//     u64 epoch | u64 id | u64 lo | u64 hi | u64 creation_scanned_pages |
//     u64 flags (bit 0 = demoted) |
//     u64 page_count | page_count * u64 page ids |
//     u32 crc32 of the record bytes before it | u32 record magic 0x4C44u
// Set-tier records carry no pages (page_count 0): they flip the demoted
// flag of the identified view in place, leaving its recorded membership
// untouched — O(1) bytes per demotion/promotion instead of O(view).
// Each record is self-framing (crc + magic): a torn or corrupt tail ends
// replay there and Open truncates it, exactly like the journal.
//
// All writes route through a StorageIo so the crash matrix can interpose.

#ifndef VMSV_STORAGE_MANIFEST_H_
#define VMSV_STORAGE_MANIFEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace vmsv {

class StorageIo;

struct ManifestView {
  /// Durable view identity — unique within a column directory, assigned by
  /// the engine, monotonic. Delta records upsert/remove by this id.
  uint64_t id = 0;
  Value lo = 0;
  Value hi = 0;
  /// Pages the creating scan read — feeds eviction scoring after reopen.
  uint64_t creation_scanned_pages = 0;
  /// True when the view lives in the cold tier: its membership is spilled
  /// to the per-view cold file and `pages` here may be empty (base
  /// snapshot) or carry the last hot membership (set-tier delta replay).
  bool demoted = false;
  /// Physical page membership in slot order (dense: holes never persist —
  /// a manifest is only written from aligned, flush-consistent states).
  std::vector<uint64_t> pages;
};

struct ViewManifest {
  uint64_t num_rows = 0;
  uint64_t num_pages = 0;
  /// Monotonic pool-mutation counter at snapshot time (diagnostics only).
  uint64_t pool_generation = 0;
  /// Base-snapshot epoch; delta records apply only when stamped with it.
  uint64_t epoch = 0;
  /// Next view id the engine should assign (ids below it may be live or
  /// retired; recovery additionally raises it above every id it sees).
  uint64_t next_view_id = 1;
  std::vector<ManifestView> views;
};

/// One incremental manifest record: upsert (add or replace the view with
/// `view.id`), remove (only `view.id` is meaningful), or set-tier (flip
/// `view.id`'s demoted flag to `view.demoted`, keeping its pages).
enum class ManifestDeltaOp : uint32_t {
  kUpsertView = 1,
  kRemoveView = 2,
  kSetViewTier = 3,
};

struct ManifestDelta {
  ManifestDeltaOp op = ManifestDeltaOp::kUpsertView;
  /// The base-snapshot epoch this delta amends.
  uint64_t epoch = 0;
  ManifestView view;
};

/// Atomically replaces `dir`/MANIFEST with `manifest` (tmp + rename + dir
/// fsync). `sync` false skips the file fsync (FlushPolicy::kNone economics);
/// the rename is still atomic against process kill. `io` null = real I/O.
Status WriteManifest(const std::string& dir, const ViewManifest& manifest,
                     bool sync, StorageIo* io = nullptr);

/// Reads and validates `dir`/MANIFEST (the BASE snapshot only — recovery
/// composes it with the delta log via ApplyManifestDeltas).
/// Error contract: NotFound when absent, IoError on bad magic/crc/truncation.
StatusOr<ViewManifest> ReadManifest(const std::string& dir);

/// "<dir>/MANIFEST" — exposed so tests can corrupt it deliberately.
std::string ManifestPath(const std::string& dir);

/// "<dir>/MANIFEST.delta" — likewise.
std::string ManifestDeltaPath(const std::string& dir);

/// The append-only side of the incremental manifest. One instance is owned
/// by the durable column (single writer — the engine's maintenance path);
/// recovery uses Open's replayed records.
class ManifestDeltaLog {
 public:
  struct OpenResult {
    std::unique_ptr<ManifestDeltaLog> log;
    /// Valid records in append order (every epoch — filtering against the
    /// base happens in ApplyManifestDeltas).
    std::vector<ManifestDelta> replayed;
    /// True when a torn/corrupt tail was found (and truncated away).
    bool tail_truncated = false;
  };

  /// Opens (creating if absent) `dir`/MANIFEST.delta, replaying every valid
  /// record; a torn tail ends replay and is truncated in place, exactly
  /// like the journal. `io` null = real I/O.
  static StatusOr<OpenResult> Open(const std::string& dir,
                                   StorageIo* io = nullptr);

  ManifestDeltaLog(const ManifestDeltaLog&) = delete;
  ManifestDeltaLog& operator=(const ManifestDeltaLog&) = delete;
  ~ManifestDeltaLog();

  /// Appends one record; `sync` fdatasyncs before returning. On a failed
  /// (possibly partial) write the tail is rewound to the last whole-record
  /// boundary, best effort.
  Status Append(const ManifestDelta& delta, bool sync);

  /// Truncates back to the bare header — the checkpoint compaction step,
  /// called right after the base snapshot (with the NEXT epoch) landed.
  Status Reset();

  /// Records appended (or replayed) since the last Reset.
  uint64_t record_count() const { return record_count_; }

 private:
  ManifestDeltaLog(int fd, StorageIo* io) : fd_(fd), io_(io) {}

  int fd_ = -1;
  StorageIo* io_ = nullptr;
  uint64_t record_count_ = 0;
  uint64_t end_offset_ = 0;
};

/// Applies `deltas` (append order) to `base`: records stamped with
/// base->epoch upsert/remove views by id (set-tier flips the demoted flag
/// of an existing view, keeping its pages; an unknown id is a no-op — the
/// view's upsert never became durable, so there is nothing to re-tier).
/// Records from any other epoch are skipped and counted. Raises
/// base->next_view_id above every id seen.
/// Returns the number of records applied; `skipped_epoch` (optional)
/// receives the skip count.
uint64_t ApplyManifestDeltas(ViewManifest* base,
                             const std::vector<ManifestDelta>& deltas,
                             uint64_t* skipped_epoch = nullptr);

}  // namespace vmsv

#endif  // VMSV_STORAGE_MANIFEST_H_
